//! Property tests for the group collectives: any group size, any root,
//! arbitrary values — results must match the sequential definition.

use fx_core::{spmd, Machine, Size};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bcast_delivers_roots_value(p in 1usize..9, root_pick in 0usize..100, v in any::<u64>()) {
        let root = root_pick % p;
        let rep = spmd(&Machine::real(p), move |cx| {
            let mine = if cx.id() == root { v } else { 0 };
            cx.bcast(root, mine)
        });
        prop_assert!(rep.results.iter().all(|&r| r == v));
    }

    #[test]
    fn reduce_equals_sequential_fold(p in 1usize..9, root_pick in 0usize..100, vals in proptest::collection::vec(any::<i64>(), 8)) {
        let root = root_pick % p;
        let vals2 = vals.clone();
        let rep = spmd(&Machine::real(p), move |cx| {
            cx.reduce(root, vals2[cx.id()], |a, b| a.wrapping_add(b))
        });
        let expect: i64 = vals[..p].iter().fold(0i64, |a, &b| a.wrapping_add(b));
        for (i, r) in rep.results.iter().enumerate() {
            if i == root {
                prop_assert_eq!(*r, Some(expect));
            } else {
                prop_assert_eq!(*r, None);
            }
        }
    }

    #[test]
    fn allreduce_min_max(p in 1usize..9, vals in proptest::collection::vec(any::<i32>(), 8)) {
        let vals2 = vals.clone();
        let rep = spmd(&Machine::real(p), move |cx| {
            let v = vals2[cx.id()];
            (cx.allreduce(v, i32::min), cx.allreduce(v, i32::max))
        });
        let lo = *vals[..p].iter().min().unwrap();
        let hi = *vals[..p].iter().max().unwrap();
        prop_assert!(rep.results.iter().all(|&(a, b)| a == lo && b == hi));
    }

    #[test]
    fn allgather_orders_by_rank(p in 1usize..9, seed in any::<u32>()) {
        let rep = spmd(&Machine::real(p), move |cx| {
            cx.allgather(seed.wrapping_add(cx.id() as u32))
        });
        let expect: Vec<u32> = (0..p as u32).map(|i| seed.wrapping_add(i)).collect();
        prop_assert!(rep.results.iter().all(|r| *r == expect));
    }

    #[test]
    fn allgather_vecs_preserves_irregular_lengths(p in 1usize..7, lens in proptest::collection::vec(0usize..6, 6)) {
        let lens2 = lens.clone();
        let rep = spmd(&Machine::real(p), move |cx| {
            let me = cx.id();
            let mine: Vec<u16> = (0..lens2[me]).map(|i| (me * 100 + i) as u16).collect();
            cx.allgather_vecs(mine)
        });
        for r in &rep.results {
            prop_assert_eq!(r.len(), p);
            for (v, part) in r.iter().enumerate() {
                let expect: Vec<u16> = (0..lens[v]).map(|i| (v * 100 + i) as u16).collect();
                prop_assert_eq!(part, &expect);
            }
        }
    }

    #[test]
    fn scans_match_prefix_folds(p in 1usize..9, vals in proptest::collection::vec(-100i64..100, 8)) {
        let vals2 = vals.clone();
        let rep = spmd(&Machine::real(p), move |cx| {
            let v = vals2[cx.id()];
            (cx.scan(v, |a, b| a + b), cx.exscan(v, |a, b| a + b))
        });
        let mut run = 0i64;
        for (i, &(inc, exc)) in rep.results.iter().enumerate() {
            prop_assert_eq!(exc, if i == 0 { None } else { Some(run) });
            run += vals[i];
            prop_assert_eq!(inc, run);
        }
    }

    #[test]
    fn alltoallv_is_a_transpose(p in 1usize..7, seed in any::<u16>()) {
        let rep = spmd(&Machine::real(p), move |cx| {
            let me = cx.id();
            let data: Vec<Vec<u32>> = (0..p)
                .map(|dst| vec![seed as u32 + (me * 10 + dst) as u32; (me + dst) % 3])
                .collect();
            cx.alltoallv(data)
        });
        for (me, out) in rep.results.iter().enumerate() {
            for (src, v) in out.iter().enumerate() {
                let expect = vec![seed as u32 + (src * 10 + me) as u32; (src + me) % 3];
                prop_assert_eq!(v, &expect);
            }
        }
    }

    #[test]
    fn partition_sizes_always_cover(p in 2usize..12, first in 1usize..6) {
        let first = first.min(p - 1);
        let rep = spmd(&Machine::real(p), move |cx| {
            let part = cx.task_partition(&[("a", Size::Procs(first)), ("b", Size::Rest)]);
            (part.group("a").len(), part.group("b").len())
        });
        for (a, b) in rep.results {
            prop_assert_eq!(a + b, p);
            prop_assert_eq!(a, first);
        }
    }

    #[test]
    fn collectives_inside_partitions_stay_scoped(p in 2usize..9, cut in 1usize..8) {
        let cut = cut.min(p - 1);
        let rep = spmd(&Machine::real(p), move |cx| {
            let part = cx.task_partition(&[("a", Size::Procs(cut)), ("b", Size::Rest)]);
            cx.task_region(&part, |cx, tr| {
                let a = tr.on(cx, "a", |cx| cx.allreduce(1u64, |x, y| x + y));
                let b = tr.on(cx, "b", |cx| cx.allreduce(1u64, |x, y| x + y));
                a.or(b).unwrap()
            })
        });
        for (i, &r) in rep.results.iter().enumerate() {
            let expect = if i < cut { cut } else { p - cut } as u64;
            prop_assert_eq!(r, expect);
        }
    }
}

//! Property tests for heartbeat work promotion: over random skew
//! profiles, processor counts, and leaf-group sizes, a promoted run must
//! be *transparent* — bit-identical results to the same program with the
//! heartbeat off. Donation may move iterations between processors, never
//! change what they compute.

use fx_apps::qsort::qsort_global_promoted;
use fx_apps::util::unit_hash;
use fx_core::{assert_promotion_transparent, Machine};
use fx_runtime::MachineModel;
use proptest::prelude::*;

fn sim(p: usize) -> Machine {
    Machine::simulated(p, MachineModel::paragon())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Quicksort through the bucketed promotable base case sorts
    /// arbitrary skews on arbitrary group and leaf-group sizes, with
    /// results identical to the heartbeat-off run.
    #[test]
    fn promoted_qsort_is_transparent(
        seed in 0u64..1_000,
        alpha in 0.4f64..2.5,
        p in 2usize..9,
        leaf in 2usize..9,
        n in 64usize..2_000,
    ) {
        let keys: Vec<i64> = (0..n)
            .map(|i| ((1.0 - unit_hash(seed, i as u64, 11).powf(alpha)) * 1.0e9) as i64)
            .collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        let rep = assert_promotion_transparent(&sim(p), move |cx| {
            qsort_global_promoted(cx, &keys, leaf)
        });
        for r in rep.results {
            prop_assert_eq!(&r, &expect);
        }
    }

    /// A promotable reduction over a random per-iteration cost profile
    /// (the worst case for the donor's uniform-cost tail estimate) is
    /// transparent and exact for any processor count.
    #[test]
    fn promoted_reduce_is_transparent(
        seed in 0u64..1_000,
        amp in 0.0f64..1e5,
        p in 2usize..9,
        n in 16usize..600,
    ) {
        let rep = assert_promotion_transparent(&sim(p), move |cx| {
            cx.pdo_reduce_promote(
                "randcost",
                0..n,
                0u64,
                |cx, i| {
                    cx.charge_flops(100.0 + amp * unit_hash(seed, i as u64, 13));
                    (i as u64).wrapping_mul(0x9e3779b97f4a7c15)
                },
                |a, b| a.wrapping_add(b),
            )
        });
        let expect = (0..n as u64)
            .fold(0u64, |a, i| a.wrapping_add(i.wrapping_mul(0x9e3779b97f4a7c15)));
        for r in rep.results {
            prop_assert_eq!(r, expect);
        }
    }
}

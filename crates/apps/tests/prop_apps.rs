//! Property tests over the applications: quicksort sorts anything on any
//! group size; FFT-Hist variants agree with the sequential oracle for
//! arbitrary mappings; Barnes-Hut worklists resolve for any replication
//! depth.

use fx_apps::barnes_hut::{bh_forces, make_bodies, BhConfig};
use fx_apps::ffthist::{fft_hist_segmented, reference_histogram, FftHistConfig};
use fx_apps::qsort::qsort_global;
use fx_core::{spmd, Machine};
use fx_kernels::nbody::BhTree;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Quicksort sorts arbitrary keys on arbitrary processor counts.
    #[test]
    fn qsort_sorts_anything(
        keys in proptest::collection::vec(-1000i64..1000, 0..400),
        p in 1usize..7,
    ) {
        let mut expect = keys.clone();
        expect.sort_unstable();
        let rep = spmd(&Machine::real(p), move |cx| qsort_global(cx, &keys));
        for r in rep.results {
            prop_assert_eq!(&r, &expect);
        }
    }

    /// Every legal segmentation of the FFT-Hist chain produces the exact
    /// sequential histograms.
    #[test]
    fn fft_hist_any_segmentation_matches_oracle(
        seg_pattern in 0usize..4,
        procs in proptest::collection::vec(1usize..4, 3),
    ) {
        let seg_of_stage = match seg_pattern {
            0 => [0, 0, 0],
            1 => [0, 0, 1],
            2 => [0, 1, 1],
            _ => [0, 1, 2],
        };
        let nseg = seg_of_stage[2] + 1;
        let seg_procs: Vec<usize> = procs[..nseg].to_vec();
        let total: usize = seg_procs.iter().sum();
        let cfg = FftHistConfig { n: 16, datasets: 2, nbins: 8, max_mag: 64.0 };
        let sp = seg_procs.clone();
        let rep = spmd(&Machine::real(total), move |cx| {
            fft_hist_segmented(cx, &cfg, &[0, 1], seg_of_stage, &sp)
        });
        // The last segment's members hold the results.
        let holders: Vec<&Vec<Vec<u64>>> =
            rep.results.iter().filter(|r| !r.is_empty()).collect();
        prop_assert_eq!(holders.len(), *seg_procs.last().unwrap());
        for h in holders {
            prop_assert_eq!(h.len(), 2);
            for (d, hist) in h.iter().enumerate() {
                prop_assert_eq!(hist, &reference_histogram(&cfg, d), "dataset {}", d);
            }
        }
    }

    /// The Barnes-Hut worklist protocol resolves every particle for any
    /// replication depth k and processor count, matching sequential BH.
    #[test]
    fn barnes_hut_resolves_for_any_k(
        k in 0usize..6,
        p in 1usize..6,
        seed in 0u64..50,
    ) {
        let n = 64;
        let bodies = make_bodies(n, seed);
        let cfg = BhConfig { n, theta: 0.5, eps: 1e-3, k, leaf_group: 1 };
        let rep = spmd(&Machine::real(p), move |cx| bh_forces(cx, &bodies, &cfg));
        let tree = BhTree::build(make_bodies(n, seed));
        for (i, b) in tree.bodies.iter().enumerate() {
            let seq = tree.force_at(b.pos, cfg.theta, cfg.eps).unwrap();
            let got = rep.results[0][tree.order[i]];
            for d in 0..3 {
                prop_assert!(
                    (got[d] - seq[d]).abs() < 1e-9,
                    "particle {} axis {}: {} vs {}", i, d, got[d], seq[d]
                );
            }
        }
    }
}

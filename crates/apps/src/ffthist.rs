//! FFT-Hist — the paper's running example (Figures 2, 3 and 5; Table 1
//! rows 1–2).
//!
//! A stream of `n x n` complex images; for each: column FFTs (`cffts`),
//! row FFTs (`rffts`), then a magnitude histogram (`hist`). Variants:
//!
//! * [`fft_hist_dp`] — pure data parallelism on the current group
//!   (Figure 2(a)'s program compiled the ordinary HPF way);
//! * [`fft_hist_pipeline`] — the 3-stage pipeline of Figure 2(c), one
//!   subgroup per stage, data crossing via `A2 = A1` assignments;
//! * [`fft_hist_replicated`] — Figure 3's replicated data parallelism;
//! * [`run_fft_hist`] with a [`FftHistMapping`] — any combination of
//!   replication and pipelining (the mappings Figure 5 explores).
//!
//! Every variant records `set start` / `set done` events so the harness
//! measures throughput and latency the way the paper does, and returns the
//! per-dataset histograms so tests can check them against the sequential
//! oracle ([`reference_histogram`]).

use fx_core::{Cx, Size};
use fx_darray::{assign2, assign2_with, DArray2, Dist, Participation};
use fx_kernels::fft::{fft2d_reference, fft_flops, fft_in_place};
use fx_kernels::hist::{hist_flops, histogram_magnitudes};
use fx_kernels::Complex;

use crate::util::{complex_input, ReqCompletion, SET_DONE, SET_START};

/// Problem parameters for one FFT-Hist run.
#[derive(Debug, Clone, Copy)]
pub struct FftHistConfig {
    /// Image edge (power of two): the paper uses 256 and 512.
    pub n: usize,
    /// Number of images in the stream.
    pub datasets: usize,
    /// Histogram bins.
    pub nbins: usize,
    /// Histogram range.
    pub max_mag: f64,
}

impl FftHistConfig {
    /// Defaults: 64 histogram bins over `[0, 2n)` magnitudes.
    pub fn new(n: usize, datasets: usize) -> Self {
        FftHistConfig { n, datasets, nbins: 64, max_mag: 2.0 * n as f64 }
    }
}

/// How FFT-Hist is mapped onto processors (the axis Figure 5 explores).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FftHistMapping {
    /// All processors data-parallel on every stage.
    DataParallel,
    /// Three pipeline stages with the given processor counts.
    Pipeline([usize; 3]),
    /// `replicas` independent modules, datasets dealt round-robin; each
    /// module runs the inner mapping.
    Replicated {
        /// Number of independent modules.
        replicas: usize,
        /// Stage processor counts when each module is itself a pipeline.
        pipeline: Option<[usize; 3]>,
    },
}

/// Sequential oracle: the histogram of dataset `d`.
pub fn reference_histogram(cfg: &FftHistConfig, d: usize) -> Vec<u64> {
    let n = cfg.n;
    let data: Vec<Complex> =
        (0..n * n).map(|i| complex_input(d, i / n, i % n)).collect();
    let transformed = fft2d_reference(&data, n, n);
    histogram_magnitudes(&transformed, cfg.nbins, cfg.max_mag)
}

/// `cffts`: in-place FFT of every locally owned column of a
/// `(*, BLOCK)`-distributed matrix, charging the cost model. (Public,
/// like the other stage kernels, for the profiling probes in `fx-bench`.)
pub fn cffts_local(cx: &mut Cx, a: &mut DArray2<Complex>) {
    let (rows, lc) = a.local_dims();
    if lc == 0 || rows == 0 {
        return;
    }
    let mut col = vec![Complex::ZERO; rows];
    for c in 0..lc {
        let local = a.local_mut();
        for r in 0..rows {
            col[r] = local[r * lc + c];
        }
        fft_in_place(&mut col, false);
        for r in 0..rows {
            local[r * lc + c] = col[r];
        }
    }
    cx.charge_flops(fft_flops(rows) * lc as f64);
    cx.charge_mem_bytes((2 * rows * lc * std::mem::size_of::<Complex>()) as f64);
}

/// `rffts`: in-place FFT of every locally owned row of a
/// `(BLOCK, *)`-distributed matrix.
pub fn rffts_local(cx: &mut Cx, a: &mut DArray2<Complex>) {
    let (lr, cols) = a.local_dims();
    if lr == 0 || cols == 0 {
        return;
    }
    for r in 0..lr {
        fft_in_place(a.local_row_mut(r), false);
    }
    cx.charge_flops(fft_flops(cols) * lr as f64);
}

/// `hist`: local histogram plus a subgroup reduction; every member of the
/// current group returns the full histogram.
pub fn hist_local(cx: &mut Cx, a: &DArray2<Complex>, nbins: usize, max_mag: f64) -> Vec<u64> {
    let local = histogram_magnitudes(a.local(), nbins, max_mag);
    cx.charge_flops(hist_flops(a.local().len()));
    cx.allreduce(local, |mut x, y| {
        fx_kernels::hist::merge_histograms(&mut x, &y);
        x
    })
}

/// Fill a distributed matrix with dataset `d`'s synthetic input; each
/// owner generates only its elements (a parallel sensor feed).
pub fn fill_input(cx: &mut Cx, a: &mut DArray2<Complex>, d: usize) {
    a.for_each_owned(|r, c, v| *v = complex_input(d, r, c));
    cx.charge_mem_bytes(std::mem::size_of_val(a.local()) as f64);
}

/// Pure data-parallel FFT-Hist on the current group. Returns one
/// histogram per dataset (identical on every member).
pub fn fft_hist_dp(cx: &mut Cx, cfg: &FftHistConfig) -> Vec<Vec<u64>> {
    let sets: Vec<usize> = (0..cfg.datasets).collect();
    fft_hist_dp_sets(cx, cfg, &sets)
}

/// Data-parallel FFT-Hist over an explicit list of dataset ids (used by
/// the replicated variants, whose modules each take a slice of the
/// stream).
pub fn fft_hist_dp_sets(cx: &mut Cx, cfg: &FftHistConfig, sets: &[usize]) -> Vec<Vec<u64>> {
    let g = cx.group();
    let n = cfg.n;
    let mut results = Vec::with_capacity(sets.len());
    let mut a1 = DArray2::new(cx, &g, [n, n], (Dist::Star, Dist::Block), Complex::ZERO);
    let mut a2 = DArray2::new(cx, &g, [n, n], (Dist::Block, Dist::Star), Complex::ZERO);
    for &d in sets {
        if cx.id() == 0 {
            cx.record(SET_START);
        }
        fill_input(cx, &mut a1, d);
        cffts_local(cx, &mut a1);
        assign2(cx, &mut a2, &a1);
        rffts_local(cx, &mut a2);
        let h = hist_local(cx, &a2, cfg.nbins, cfg.max_mag);
        if cx.id() == 0 {
            cx.record(SET_DONE);
        }
        results.push(h);
    }
    results
}

/// The 3-stage data-parallel pipeline of Figure 2(c). Returns the
/// histograms on members of the `hist` stage (G3); empty elsewhere.
pub fn fft_hist_pipeline(cx: &mut Cx, cfg: &FftHistConfig, procs: [usize; 3]) -> Vec<Vec<u64>> {
    let sets: Vec<usize> = (0..cfg.datasets).collect();
    fft_hist_pipeline_sets(cx, cfg, procs, &sets)
}

/// Pipelined FFT-Hist over an explicit list of dataset ids.
pub fn fft_hist_pipeline_sets(
    cx: &mut Cx,
    cfg: &FftHistConfig,
    procs: [usize; 3],
    sets: &[usize],
) -> Vec<Vec<u64>> {
    fft_hist_pipeline_mode(cx, cfg, procs, sets, Participation::Minimal)
}

/// Pipelined FFT-Hist with an explicit participation mode for the
/// cross-stage assignments — `Participation::WholeGroup` is the ablation
/// for the paper's §4 claim that minimal-processor-subset identification
/// is essential for pipelined task parallelism.
pub fn fft_hist_pipeline_mode(
    cx: &mut Cx,
    cfg: &FftHistConfig,
    procs: [usize; 3],
    sets: &[usize],
    mode: Participation,
) -> Vec<Vec<u64>> {
    assert_eq!(
        procs.iter().sum::<usize>(),
        cx.nprocs(),
        "pipeline stage processors must sum to the group size"
    );
    let part = cx.task_partition(&[
        ("G1", Size::Procs(procs[0])),
        ("G2", Size::Procs(procs[1])),
        ("G3", Size::Procs(procs[2])),
    ]);
    let g1 = part.group("G1");
    let g2 = part.group("G2");
    let g3 = part.group("G3");
    let n = cfg.n;
    // SUBGROUP(G1) :: A1, etc. — the paper's variable mapping.
    let mut a1 = DArray2::new(cx, &g1, [n, n], (Dist::Star, Dist::Block), Complex::ZERO);
    let mut a2 = DArray2::new(cx, &g2, [n, n], (Dist::Block, Dist::Star), Complex::ZERO);
    let mut a3 = DArray2::new(cx, &g3, [n, n], (Dist::Block, Dist::Star), Complex::ZERO);
    let mut results = Vec::new();

    cx.task_region(&part, |cx, tr| {
        for &d in sets {
            tr.on(cx, "G1", |cx| {
                if cx.id() == 0 {
                    cx.record(SET_START);
                }
                fill_input(cx, &mut a1, d);
                cffts_local(cx, &mut a1);
            });
            // Parent scope: only G1 ∪ G2 take part under Minimal.
            assign2_with(cx, &mut a2, &a1, mode);
            tr.on(cx, "G2", |cx| rffts_local(cx, &mut a2));
            // Only G2 ∪ G3 take part under Minimal.
            assign2_with(cx, &mut a3, &a2, mode);
            if let Some(h) = tr.on(cx, "G3", |cx| {
                let h = hist_local(cx, &a3, cfg.nbins, cfg.max_mag);
                if cx.id() == 0 {
                    cx.record(SET_DONE);
                }
                h
            }) {
                results.push(h);
            }
        }
    });
    results
}

/// Run FFT-Hist under an arbitrary contiguous segmentation of its three
/// stages (fill+cffts, rffts, hist): `seg_of_stage[k]` gives the segment
/// index of stage `k` (non-decreasing, starting at 0) and `seg_procs[s]`
/// the processors of segment `s`. Adjacent stages in the same segment
/// are fused (no cross-group transfer; the cffts→rffts redistribution
/// then happens within the segment's own group). This is the executable
/// form of the mappings `fx-mapping` searches over.
pub fn fft_hist_segmented(
    cx: &mut Cx,
    cfg: &FftHistConfig,
    sets: &[usize],
    seg_of_stage: [usize; 3],
    seg_procs: &[usize],
) -> Vec<Vec<u64>> {
    assert!(seg_of_stage[0] == 0, "segments start at 0");
    assert!(
        seg_of_stage.windows(2).all(|w| w[1] == w[0] || w[1] == w[0] + 1),
        "segments must be contiguous and non-decreasing"
    );
    let nseg = seg_of_stage[2] + 1;
    assert_eq!(seg_procs.len(), nseg, "one processor count per segment");
    assert_eq!(seg_procs.iter().sum::<usize>(), cx.nprocs(), "segments must use the whole group");
    if nseg == 1 {
        return fft_hist_dp_sets(cx, cfg, sets);
    }

    let names: Vec<String> = (0..nseg).map(|s| format!("S{s}")).collect();
    let spec: Vec<(&str, Size)> =
        names.iter().zip(seg_procs).map(|(n, &p)| (n.as_str(), Size::Procs(p))).collect();
    let part = cx.task_partition(&spec);
    let g: Vec<_> = names.iter().map(|n| part.group(n)).collect();
    let n = cfg.n;
    let mut a1 =
        DArray2::new(cx, &g[seg_of_stage[0]], [n, n], (Dist::Star, Dist::Block), Complex::ZERO);
    let mut a2 =
        DArray2::new(cx, &g[seg_of_stage[1]], [n, n], (Dist::Block, Dist::Star), Complex::ZERO);
    let mut a3 = (seg_of_stage[2] != seg_of_stage[1]).then(|| {
        DArray2::new(cx, &g[seg_of_stage[2]], [n, n], (Dist::Block, Dist::Star), Complex::ZERO)
    });
    let mut results = Vec::new();

    cx.task_region(&part, |cx, tr| {
        for &d in sets {
            tr.on(cx, &names[seg_of_stage[0]], |cx| {
                if cx.id() == 0 {
                    cx.record(SET_START);
                }
                fill_input(cx, &mut a1, d);
                cffts_local(cx, &mut a1);
            });
            // cffts → rffts redistribution: cross-group when the stages
            // sit in different segments, in-group otherwise.
            assign2(cx, &mut a2, &a1);
            tr.on(cx, &names[seg_of_stage[1]], |cx| rffts_local(cx, &mut a2));
            let hist_input = match &mut a3 {
                Some(a3) => {
                    assign2(cx, a3, &a2);
                    &*a3
                }
                None => &a2,
            };
            if let Some(h) = tr.on(cx, &names[seg_of_stage[2]], |cx| {
                let h = hist_local(cx, hist_input, cfg.nbins, cfg.max_mag);
                if cx.id() == 0 {
                    cx.record(SET_DONE);
                }
                h
            }) {
                results.push(h);
            }
        }
    });
    results
}

/// Figure 3: replicated data parallelism — `replicas` subgroups, each
/// running the full data-parallel computation on its share of the stream
/// (dataset `d` goes to replica `d % replicas`). With
/// `pipeline = Some(stage_procs)`, each replica is itself a pipeline
/// (the two-module mappings of Figure 5). Returns this member's module
/// results as `(dataset, histogram)` pairs.
pub fn fft_hist_replicated(
    cx: &mut Cx,
    cfg: &FftHistConfig,
    replicas: usize,
    pipeline: Option<[usize; 3]>,
) -> Vec<(usize, Vec<u64>)> {
    crate::util::replicated_modules(cx, replicas, |cx, rep| {
        // My module processes datasets rep, rep+replicas, …
        let my_sets: Vec<usize> = (0..cfg.datasets).filter(|d| d % replicas == rep).collect();
        let hists = match pipeline {
            None => fft_hist_dp_sets(cx, cfg, &my_sets),
            Some(stage) => fft_hist_pipeline_sets(cx, cfg, stage, &my_sets),
        };
        // Within a pipelined module only the hist stage holds results;
        // pad so the zip below stays aligned for everyone else.
        if hists.is_empty() {
            Vec::new()
        } else {
            my_sets.into_iter().zip(hists).collect()
        }
    })
}

// ----- serving adapters ---------------------------------------------------
//
// The `_requests` variants run a *batch* of requests — `(request index,
// dataset id)` pairs — through the same stage kernels and report each
// request's completion virtual time on one canonical processor, so a
// serving layer can account per-request latency. They reuse the exact
// assignments and collectives of the one-shot variants: outputs are
// bit-identical to the equivalent one-shot run by construction.

/// Data-parallel FFT-Hist over a batch of requests. The group leader
/// (virtual rank 0) reports every completion; other members return an
/// empty vec.
pub fn fft_hist_dp_requests(
    cx: &mut Cx,
    cfg: &FftHistConfig,
    reqs: &[(usize, usize)],
) -> Vec<ReqCompletion<Vec<u64>>> {
    let g = cx.group();
    let n = cfg.n;
    let mut out = Vec::new();
    let mut a1 = DArray2::new(cx, &g, [n, n], (Dist::Star, Dist::Block), Complex::ZERO);
    let mut a2 = DArray2::new(cx, &g, [n, n], (Dist::Block, Dist::Star), Complex::ZERO);
    for &(req, d) in reqs {
        // Every member tags its work with the request's causal trace id
        // (deterministic from `req`, so no coordination) — a no-op
        // unless the machine runs with tracing on.
        cx.set_trace(fx_core::request_trace_id(req));
        if cx.id() == 0 {
            cx.record(SET_START);
        }
        fill_input(cx, &mut a1, d);
        cffts_local(cx, &mut a1);
        assign2(cx, &mut a2, &a1);
        rffts_local(cx, &mut a2);
        let h = hist_local(cx, &a2, cfg.nbins, cfg.max_mag);
        if cx.id() == 0 {
            cx.record(SET_DONE);
            out.push(ReqCompletion { req, done: cx.now(), output: h });
        }
    }
    out
}

/// Segmented (pipelined) FFT-Hist over a batch of requests: same stage
/// segmentation contract as [`fft_hist_segmented`]. The last segment's
/// leader reports completions.
pub fn fft_hist_segmented_requests(
    cx: &mut Cx,
    cfg: &FftHistConfig,
    reqs: &[(usize, usize)],
    seg_of_stage: [usize; 3],
    seg_procs: &[usize],
) -> Vec<ReqCompletion<Vec<u64>>> {
    assert!(seg_of_stage[0] == 0, "segments start at 0");
    assert!(
        seg_of_stage.windows(2).all(|w| w[1] == w[0] || w[1] == w[0] + 1),
        "segments must be contiguous and non-decreasing"
    );
    let nseg = seg_of_stage[2] + 1;
    assert_eq!(seg_procs.len(), nseg, "one processor count per segment");
    assert_eq!(seg_procs.iter().sum::<usize>(), cx.nprocs(), "segments must use the whole group");
    if nseg == 1 {
        return fft_hist_dp_requests(cx, cfg, reqs);
    }

    let names: Vec<String> = (0..nseg).map(|s| format!("S{s}")).collect();
    let spec: Vec<(&str, Size)> =
        names.iter().zip(seg_procs).map(|(n, &p)| (n.as_str(), Size::Procs(p))).collect();
    let part = cx.task_partition(&spec);
    let g: Vec<_> = names.iter().map(|n| part.group(n)).collect();
    let n = cfg.n;
    let mut a1 =
        DArray2::new(cx, &g[seg_of_stage[0]], [n, n], (Dist::Star, Dist::Block), Complex::ZERO);
    let mut a2 =
        DArray2::new(cx, &g[seg_of_stage[1]], [n, n], (Dist::Block, Dist::Star), Complex::ZERO);
    let mut a3 = (seg_of_stage[2] != seg_of_stage[1]).then(|| {
        DArray2::new(cx, &g[seg_of_stage[2]], [n, n], (Dist::Block, Dist::Star), Complex::ZERO)
    });
    let mut out = Vec::new();

    cx.task_region(&part, |cx, tr| {
        for &(req, d) in reqs {
            // All segments walk the request stream in order, so each
            // processor tags its local work (and outgoing transfers)
            // with the current request's trace id.
            cx.set_trace(fx_core::request_trace_id(req));
            tr.on(cx, &names[seg_of_stage[0]], |cx| {
                if cx.id() == 0 {
                    cx.record(SET_START);
                }
                fill_input(cx, &mut a1, d);
                cffts_local(cx, &mut a1);
            });
            assign2(cx, &mut a2, &a1);
            tr.on(cx, &names[seg_of_stage[1]], |cx| rffts_local(cx, &mut a2));
            let hist_input = match &mut a3 {
                Some(a3) => {
                    assign2(cx, a3, &a2);
                    &*a3
                }
                None => &a2,
            };
            if let Some(Some(c)) = tr.on(cx, &names[seg_of_stage[2]], |cx| {
                let h = hist_local(cx, hist_input, cfg.nbins, cfg.max_mag);
                if cx.id() == 0 {
                    cx.record(SET_DONE);
                    Some(ReqCompletion { req, done: cx.now(), output: h })
                } else {
                    None
                }
            }) {
                out.push(c);
            }
        }
    });
    out
}

/// Replicated FFT-Hist over a batch of requests: batch position `i` is
/// dealt to module `i % replicas` (a deterministic round-robin), and each
/// module's leader reports its own completions. With
/// `pipeline = Some(stage_procs)` every module is itself a pipeline.
pub fn fft_hist_replicated_requests(
    cx: &mut Cx,
    cfg: &FftHistConfig,
    replicas: usize,
    pipeline: Option<[usize; 3]>,
    reqs: &[(usize, usize)],
) -> Vec<ReqCompletion<Vec<u64>>> {
    let reqs = reqs.to_vec();
    crate::util::replicated_modules(cx, replicas, move |cx, rep| {
        let mine: Vec<(usize, usize)> = reqs
            .iter()
            .enumerate()
            .filter(|(i, _)| i % replicas == rep)
            .map(|(_, &r)| r)
            .collect();
        match pipeline {
            None => fft_hist_dp_requests(cx, cfg, &mine),
            Some(stage) => fft_hist_segmented_requests(cx, cfg, &mine, [0, 1, 2], &stage),
        }
    })
}

/// Serve a batch of requests under any mapping (the dispatch a serving
/// layer uses). Completions come back on the leader(s) of the group(s)
/// that produce results; collect across processors via the run report.
pub fn fft_hist_requests(
    cx: &mut Cx,
    cfg: &FftHistConfig,
    mapping: FftHistMapping,
    reqs: &[(usize, usize)],
) -> Vec<ReqCompletion<Vec<u64>>> {
    match mapping {
        FftHistMapping::DataParallel => fft_hist_dp_requests(cx, cfg, reqs),
        FftHistMapping::Pipeline(stage) => {
            fft_hist_segmented_requests(cx, cfg, reqs, [0, 1, 2], &stage)
        }
        FftHistMapping::Replicated { replicas, pipeline } => {
            fft_hist_replicated_requests(cx, cfg, replicas, pipeline, reqs)
        }
    }
}

/// Run FFT-Hist under any mapping (the dispatch used by the Table 1 and
/// Figure 5 harnesses).
pub fn run_fft_hist(cx: &mut Cx, cfg: &FftHistConfig, mapping: FftHistMapping) {
    match mapping {
        FftHistMapping::DataParallel => {
            fft_hist_dp(cx, cfg);
        }
        FftHistMapping::Pipeline(stage) => {
            fft_hist_pipeline(cx, cfg, stage);
        }
        FftHistMapping::Replicated { replicas, pipeline } => {
            fft_hist_replicated(cx, cfg, replicas, pipeline);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_core::{spmd, Machine, MachineModel};

    fn small_cfg() -> FftHistConfig {
        FftHistConfig { n: 16, datasets: 3, nbins: 16, max_mag: 64.0 }
    }

    #[test]
    fn dp_matches_reference() {
        let cfg = small_cfg();
        for p in [1usize, 2, 4] {
            let rep = spmd(&Machine::real(p), move |cx| fft_hist_dp(cx, &cfg));
            for proc_results in &rep.results {
                for (d, h) in proc_results.iter().enumerate() {
                    assert_eq!(h, &reference_histogram(&cfg, d), "p={p} dataset {d}");
                }
            }
        }
    }

    #[test]
    fn pipeline_matches_reference() {
        let cfg = small_cfg();
        let rep = spmd(&Machine::real(6), move |cx| fft_hist_pipeline(cx, &cfg, [2, 3, 1]));
        // G3 members (phys 5) hold the results.
        let g3 = &rep.results[5];
        assert_eq!(g3.len(), cfg.datasets);
        for (d, h) in g3.iter().enumerate() {
            assert_eq!(h, &reference_histogram(&cfg, d), "dataset {d}");
        }
    }

    #[test]
    fn replicated_partitions_the_stream() {
        let cfg = FftHistConfig { datasets: 5, ..small_cfg() };
        let rep = spmd(&Machine::real(4), move |cx| fft_hist_replicated(cx, &cfg, 2, None));
        // Replica 0 (procs 0,1): datasets 0, 2, 4; replica 1: 1, 3.
        for proc in [0usize, 1] {
            let sets: Vec<usize> = rep.results[proc].iter().map(|(d, _)| *d).collect();
            assert_eq!(sets, vec![0, 2, 4]);
        }
        for proc in [2usize, 3] {
            let sets: Vec<usize> = rep.results[proc].iter().map(|(d, _)| *d).collect();
            assert_eq!(sets, vec![1, 3]);
        }
        for (d, h) in rep.results.iter().flatten() {
            assert_eq!(h, &reference_histogram(&cfg, *d), "dataset {d}");
        }
    }

    #[test]
    fn replicated_pipeline_hybrid_matches_reference() {
        let cfg = FftHistConfig { datasets: 4, ..small_cfg() };
        let rep = spmd(&Machine::real(6), move |cx| {
            fft_hist_replicated(cx, &cfg, 2, Some([1, 1, 1]))
        });
        // Within each module only the G3 member reports; others are empty.
        let mut seen = vec![false; cfg.datasets];
        for proc_results in &rep.results {
            for (d, h) in proc_results {
                assert_eq!(h, &reference_histogram(&cfg, *d));
                seen[*d] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "all datasets processed: {seen:?}");
    }

    #[test]
    fn segmented_mappings_match_reference() {
        let cfg = small_cfg();
        // [fill+cffts | rffts+hist] on 2+2, and [all fused] on 4.
        let rep = spmd(&Machine::real(4), move |cx| {
            let sets: Vec<usize> = (0..cfg.datasets).collect();
            let two_seg = fft_hist_segmented(cx, &cfg, &sets, [0, 1, 1], &[2, 2]);
            let fused = fft_hist_segmented(cx, &cfg, &sets, [0, 0, 0], &[4]);
            (two_seg, fused)
        });
        // Hist segment members (phys 2, 3) hold the two-segment results.
        for (d, h) in rep.results[2].0.iter().enumerate() {
            assert_eq!(h, &reference_histogram(&cfg, d), "two-seg dataset {d}");
        }
        for r in &rep.results {
            for (d, h) in r.1.iter().enumerate() {
                assert_eq!(h, &reference_histogram(&cfg, d), "fused dataset {d}");
            }
        }
    }

    #[test]
    fn fused_first_two_stages_match_reference() {
        let cfg = small_cfg();
        let rep = spmd(&Machine::real(3), move |cx| {
            let sets: Vec<usize> = (0..cfg.datasets).collect();
            fft_hist_segmented(cx, &cfg, &sets, [0, 0, 1], &[2, 1])
        });
        for (d, h) in rep.results[2].iter().enumerate() {
            assert_eq!(h, &reference_histogram(&cfg, d), "dataset {d}");
        }
    }

    #[test]
    fn run_fft_hist_dispatches_every_mapping() {
        let cfg = FftHistConfig { n: 16, datasets: 2, nbins: 8, max_mag: 64.0 };
        let rep = spmd(&Machine::real(6), move |cx| {
            run_fft_hist(cx, &cfg, FftHistMapping::DataParallel);
            run_fft_hist(cx, &cfg, FftHistMapping::Pipeline([2, 2, 2]));
            run_fft_hist(cx, &cfg, FftHistMapping::Replicated { replicas: 2, pipeline: None });
            run_fft_hist(
                cx,
                &cfg,
                FftHistMapping::Replicated { replicas: 2, pipeline: Some([1, 1, 1]) },
            );
        });
        // 4 runs x 2 datasets each: every variant completed the stream.
        assert_eq!(rep.events_named(SET_DONE).len(), 8);
    }

    #[test]
    fn request_adapters_match_reference_and_report_leaders_only() {
        let cfg = small_cfg();
        let reqs: Vec<(usize, usize)> = vec![(10, 0), (11, 2), (12, 1)];
        let mappings = [
            FftHistMapping::DataParallel,
            FftHistMapping::Pipeline([2, 2, 2]),
            FftHistMapping::Replicated { replicas: 2, pipeline: None },
            FftHistMapping::Replicated { replicas: 2, pipeline: Some([1, 1, 1]) },
        ];
        for mapping in mappings {
            let reqs2 = reqs.clone();
            let rep = spmd(&Machine::simulated(6, MachineModel::paragon()), move |cx| {
                fft_hist_requests(cx, &cfg, mapping, &reqs2)
            });
            let mut completions: Vec<_> = rep.results.iter().flatten().collect();
            completions.sort_by_key(|c| c.req);
            assert_eq!(
                completions.iter().map(|c| c.req).collect::<Vec<_>>(),
                vec![10, 11, 12],
                "{mapping:?}: every request completes exactly once"
            );
            for c in &completions {
                let d = reqs.iter().find(|(r, _)| *r == c.req).unwrap().1;
                assert_eq!(c.output, reference_histogram(&cfg, d), "{mapping:?} req {}", c.req);
                assert!(c.done > 0.0, "{mapping:?}: completion time must advance");
            }
        }
    }

    #[test]
    fn pipeline_overlaps_in_virtual_time() {
        // With three 1-processor stages, steady-state throughput must
        // exceed 1/latency (i.e. the pipeline actually overlaps).
        let cfg = FftHistConfig { n: 32, datasets: 8, nbins: 16, max_mag: 128.0 };
        let rep = spmd(&Machine::simulated(3, MachineModel::paragon()), move |cx| {
            fft_hist_pipeline(cx, &cfg, [1, 1, 1]);
        });
        let throughput = rep.throughput(SET_DONE, 2);
        let latency = rep.latency(SET_START, SET_DONE);
        assert!(
            throughput * latency > 1.5,
            "no pipeline overlap: thr={throughput} lat={latency}"
        );
    }

    #[test]
    fn dp_uses_all_processors_for_latency() {
        // Latency on 4 procs must beat latency on 1 proc (the point of
        // data parallelism under a compute-heavy model).
        let cfg = FftHistConfig { n: 64, datasets: 2, nbins: 16, max_mag: 256.0 };
        let lat = |p: usize| {
            let rep = spmd(
                &Machine::simulated(p, MachineModel::zero_comm(1e-7)),
                move |cx| {
                    fft_hist_dp(cx, &cfg);
                },
            );
            rep.latency(SET_START, SET_DONE)
        };
        let l1 = lat(1);
        let l4 = lat(4);
        assert!(l4 < l1 / 2.0, "dp speedup missing: l1={l1} l4={l4}");
    }
}

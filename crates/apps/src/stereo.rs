//! Multibaseline stereo (Okutomi & Kanade; Webb '93 — Table 1 row 4).
//!
//! Input: a reference image plus `n_match` match images from cameras
//! along a horizontal baseline. Per the paper, the major steps are:
//! **difference images** (sum of squared differences between
//! corresponding pixels of the match images for each candidate
//! disparity), **error images** (sum over a surrounding window of
//! pixels), and the **depth image** (per-pixel minimum across
//! disparities).
//!
//! Images are `(*, BLOCK)` column-distributed — the baseline direction.
//! Each candidate disparity *shifts* the match images along columns, an
//! array assignment that crosses block boundaries (real communication
//! every disparity, as in the HPF formulation); the horizontal half of
//! the separable window sum uses a column-halo exchange, the vertical
//! half is local.

use fx_core::Cx;
use fx_darray::{assign2, copy_remap2, exchange_col_halo, DArray2, Dist};
use fx_kernels::image::{
    box_sum_cols_with_halo, box_sum_rows_with_halo, ssd_flops, window_flops,
    window_sum_reference,
};

use crate::util::{real_input, replicated_modules, SET_DONE, SET_START};

/// Problem parameters for multibaseline stereo.
#[derive(Debug, Clone, Copy)]
pub struct StereoConfig {
    /// Image rows.
    pub rows: usize,
    /// Image columns (the baseline direction).
    pub cols: usize,
    /// Number of match images (the paper uses three or more cameras, so
    /// two or more match images).
    pub n_match: usize,
    /// Candidate disparities `0 .. max_disp`.
    pub max_disp: usize,
    /// Window half-width of the error-image stage.
    pub window: usize,
    /// Image sets in the stream.
    pub datasets: usize,
}

impl StereoConfig {
    /// The paper's data-set scale: 256x240 images.
    pub fn paper() -> Self {
        StereoConfig { rows: 240, cols: 256, n_match: 2, max_disp: 8, window: 2, datasets: 16 }
    }
}

/// Pixel of match image `m` (1-based camera index) for dataset `d`: an
/// inverse warp of the reference scene by `m * truth_disparity`, so that
/// sampling the match image at `c + m * truth` recovers the reference
/// pixel (away from disparity-band boundaries) and depth recovery is
/// verifiable.
fn match_input(cfg: &StereoConfig, d: usize, m: usize, r: usize, c: usize) -> f32 {
    let disp = truth_disparity(cfg, r, c) as usize;
    let sc = c.saturating_sub(m * disp);
    real_input(d, r, sc)
}

/// The known piecewise-constant disparity field used to synthesize match
/// images (diagonal bands wide enough that the error window fits inside).
pub fn truth_disparity(cfg: &StereoConfig, r: usize, c: usize) -> u16 {
    (((r + c) / 16) % cfg.max_disp) as u16
}

/// Sequential oracle: the depth image of dataset `d`.
pub fn reference_depth(cfg: &StereoConfig, d: usize) -> Vec<u16> {
    let (rows, cols) = (cfg.rows, cfg.cols);
    let npix = rows * cols;
    let reference: Vec<f32> = (0..npix).map(|i| real_input(d, i / cols, i % cols)).collect();
    let mut best = vec![f32::INFINITY; npix];
    let mut depth = vec![0u16; npix];
    for disp in 0..cfg.max_disp {
        let mut diff = vec![0f32; npix];
        for m in 1..=cfg.n_match {
            for r in 0..rows {
                for c in 0..cols {
                    let i = r * cols + c;
                    let shifted_c = (c + m * disp).min(cols - 1);
                    let mv = match_input(cfg, d, m, r, shifted_c);
                    let e = reference[i] - mv;
                    diff[i] += e * e;
                }
            }
        }
        let err = window_sum_reference(&diff, rows, cols, cfg.window);
        for i in 0..npix {
            if err[i] < best[i] {
                best[i] = err[i];
                depth[i] = disp as u16;
            }
        }
    }
    depth
}

/// Process the given data sets data-parallel on the current group.
/// Returns, per dataset, this processor's local depth columns as
/// `(dataset, local_depth)` (row-major `rows x local_cols`).
pub fn stereo_stream(cx: &mut Cx, cfg: &StereoConfig, sets: &[usize]) -> Vec<(usize, Vec<u16>)> {
    let g = cx.group();
    let (rows, cols) = (cfg.rows, cfg.cols);
    let dist = (Dist::Star, Dist::Block);
    let mut reference = DArray2::new(cx, &g, [rows, cols], dist, 0f32);
    let mut matches: Vec<DArray2<f32>> =
        (0..cfg.n_match).map(|_| DArray2::new(cx, &g, [rows, cols], dist, 0f32)).collect();
    let mut shifted = DArray2::new(cx, &g, [rows, cols], dist, 0f32);
    let mut diff = DArray2::new(cx, &g, [rows, cols], dist, 0f32);
    let mut out = Vec::with_capacity(sets.len());

    for &d in sets {
        if cx.id() == 0 {
            cx.record(SET_START);
        }
        // Camera feed: each owner generates its columns of every image.
        reference.for_each_owned(|r, c, v| *v = real_input(d, r, c));
        for (mi, img) in matches.iter_mut().enumerate() {
            img.for_each_owned(|r, c, v| *v = match_input(cfg, d, mi + 1, r, c));
        }
        cx.charge_mem_bytes(((cfg.n_match + 1) * reference.local().len() * 4) as f64);

        let (lr, lc) = reference.local_dims();
        let npix = lr * lc;
        let mut best = vec![f32::INFINITY; npix];
        let mut depth = vec![0u16; npix];
        for disp in 0..cfg.max_disp {
            // Difference image: SSD across the shifted match images. The
            // shift is an array assignment that crosses column blocks.
            for v in diff.local_mut() {
                *v = 0.0;
            }
            for (mi, img) in matches.iter().enumerate() {
                let m = mi + 1;
                copy_remap2(cx, &mut shifted, img, |r, c| (r, (c + m * disp).min(cols - 1)));
                let refl = reference.local();
                let shl = shifted.local();
                for (dv, (rv, sv)) in diff.local_mut().iter_mut().zip(refl.iter().zip(shl)) {
                    let e = rv - sv;
                    *dv += e * e;
                }
            }
            cx.charge_flops(ssd_flops(npix) * cfg.n_match as f64);

            // Error image: horizontal sum with column halos, vertical
            // sum local (columns hold all rows).
            let halo = exchange_col_halo(cx, &diff, cfg.window);
            let horiz =
                box_sum_rows_with_halo(diff.local(), lr, lc, cfg.window, &halo.left, &halo.right);
            let err = box_sum_cols_with_halo(&horiz, lr, lc, cfg.window, &[], &[]);
            cx.charge_flops(window_flops(npix, cfg.window));

            // Depth: running argmin.
            for i in 0..npix {
                if err[i] < best[i] {
                    best[i] = err[i];
                    depth[i] = disp as u16;
                }
            }
            cx.charge_flops(npix as f64);
        }
        if cx.id() == 0 {
            cx.record(SET_DONE);
        }
        out.push((d, depth));
    }
    out
}

/// Data-parallel stereo over the whole stream.
pub fn stereo_dp(cx: &mut Cx, cfg: &StereoConfig) -> Vec<(usize, Vec<u16>)> {
    let sets: Vec<usize> = (0..cfg.datasets).collect();
    stereo_stream(cx, cfg, &sets)
}

/// Pipelined stereo: difference images (G1) → error images (G2) → depth
/// (G3), one diff/error matrix per disparity crossing each boundary.
/// Returns `(dataset, local_depth)` pairs on G3 members (column tiles of
/// G3's layout), empty elsewhere.
pub fn stereo_pipeline(
    cx: &mut Cx,
    cfg: &StereoConfig,
    procs: [usize; 3],
    sets: &[usize],
) -> Vec<(usize, Vec<u16>)> {
    assert_eq!(
        procs.iter().sum::<usize>(),
        cx.nprocs(),
        "pipeline stage processors must sum to the group size"
    );
    let part = cx.task_partition(&[
        ("G1", fx_core::Size::Procs(procs[0])),
        ("G2", fx_core::Size::Procs(procs[1])),
        ("G3", fx_core::Size::Procs(procs[2])),
    ]);
    let g1 = part.group("G1");
    let g2 = part.group("G2");
    let g3 = part.group("G3");
    let (rows, cols) = (cfg.rows, cfg.cols);
    let dist = (Dist::Star, Dist::Block);

    // SUBGROUP(G1): reference/match/shift/diff; SUBGROUP(G2): diffs and
    // error volumes; SUBGROUP(G3): error volume and depth.
    let mut reference = DArray2::new(cx, &g1, [rows, cols], dist, 0f32);
    let mut matches: Vec<DArray2<f32>> =
        (0..cfg.n_match).map(|_| DArray2::new(cx, &g1, [rows, cols], dist, 0f32)).collect();
    let mut shifted = DArray2::new(cx, &g1, [rows, cols], dist, 0f32);
    let mut diff_g1: Vec<DArray2<f32>> =
        (0..cfg.max_disp).map(|_| DArray2::new(cx, &g1, [rows, cols], dist, 0f32)).collect();
    let mut diff_g2: Vec<DArray2<f32>> =
        (0..cfg.max_disp).map(|_| DArray2::new(cx, &g2, [rows, cols], dist, 0f32)).collect();
    let mut err_g2: Vec<DArray2<f32>> =
        (0..cfg.max_disp).map(|_| DArray2::new(cx, &g2, [rows, cols], dist, 0f32)).collect();
    let mut err_g3: Vec<DArray2<f32>> =
        (0..cfg.max_disp).map(|_| DArray2::new(cx, &g3, [rows, cols], dist, 0f32)).collect();
    let mut out = Vec::new();

    cx.task_region(&part, |cx, tr| {
        for &d in sets {
            tr.on(cx, "G1", |cx| {
                if cx.id() == 0 {
                    cx.record(SET_START);
                }
                reference.for_each_owned(|r, c, v| *v = real_input(d, r, c));
                for (mi, img) in matches.iter_mut().enumerate() {
                    img.for_each_owned(|r, c, v| *v = match_input(cfg, d, mi + 1, r, c));
                }
                let npix = reference.local().len();
                cx.charge_mem_bytes(((cfg.n_match + 1) * npix * 4) as f64);
                for (disp, diff) in diff_g1.iter_mut().enumerate() {
                    for v in diff.local_mut() {
                        *v = 0.0;
                    }
                    for (mi, img) in matches.iter().enumerate() {
                        let m = mi + 1;
                        copy_remap2(cx, &mut shifted, img, |r, c| {
                            (r, (c + m * disp).min(cols - 1))
                        });
                        let refl = reference.local();
                        let shl = shifted.local();
                        for (dv, (rv, sv)) in
                            diff.local_mut().iter_mut().zip(refl.iter().zip(shl))
                        {
                            let e = rv - sv;
                            *dv += e * e;
                        }
                    }
                    cx.charge_flops(ssd_flops(npix) * cfg.n_match as f64);
                }
            });
            // Difference volume crosses to the error stage.
            for (dst, src) in diff_g2.iter_mut().zip(&diff_g1) {
                assign2(cx, dst, src);
            }
            tr.on(cx, "G2", |cx| {
                for (diff, err) in diff_g2.iter().zip(err_g2.iter_mut()) {
                    let (lr, lc) = diff.local_dims();
                    let halo = exchange_col_halo(cx, diff, cfg.window);
                    let horiz = box_sum_rows_with_halo(
                        diff.local(),
                        lr,
                        lc,
                        cfg.window,
                        &halo.left,
                        &halo.right,
                    );
                    let e = box_sum_cols_with_halo(&horiz, lr, lc, cfg.window, &[], &[]);
                    err.local_mut().copy_from_slice(&e);
                    cx.charge_flops(window_flops(lr * lc, cfg.window));
                }
            });
            // Error volume crosses to the depth stage.
            for (dst, src) in err_g3.iter_mut().zip(&err_g2) {
                assign2(cx, dst, src);
            }
            if let Some(depth) = tr.on(cx, "G3", |cx| {
                let (lr, lc) = err_g3[0].local_dims();
                let npix = lr * lc;
                let mut best = vec![f32::INFINITY; npix];
                let mut depth = vec![0u16; npix];
                for (disp, err) in err_g3.iter().enumerate() {
                    for (i, &e) in err.local().iter().enumerate() {
                        if e < best[i] {
                            best[i] = e;
                            depth[i] = disp as u16;
                        }
                    }
                }
                cx.charge_flops((npix * cfg.max_disp) as f64);
                if cx.id() == 0 {
                    cx.record(SET_DONE);
                }
                depth
            }) {
                out.push((d, depth));
            }
        }
    });
    out
}

/// Replication combined with pipelining (§3.3): `replicas` modules, each
/// a diff→error→depth pipeline. Returns this module's G3-held results.
pub fn stereo_replicated_pipeline(
    cx: &mut Cx,
    cfg: &StereoConfig,
    replicas: usize,
    stage_procs: [usize; 3],
) -> Vec<(usize, Vec<u16>)> {
    replicated_modules(cx, replicas, |cx, rep| {
        let my_sets: Vec<usize> = (0..cfg.datasets).filter(|d| d % replicas == rep).collect();
        stereo_pipeline(cx, cfg, stage_procs, &my_sets)
    })
}

/// Replicated stereo: `replicas` modules, datasets dealt round-robin.
pub fn stereo_replicated(
    cx: &mut Cx,
    cfg: &StereoConfig,
    replicas: usize,
) -> Vec<(usize, Vec<u16>)> {
    replicated_modules(cx, replicas, |cx, rep| {
        let my_sets: Vec<usize> = (0..cfg.datasets).filter(|d| d % replicas == rep).collect();
        stereo_stream(cx, cfg, &my_sets)
    })
}

/// Reassemble per-processor local depth tiles (column blocks, in
/// virtual-rank order) into the global image.
pub fn assemble_depth(
    tiles: &[Vec<u16>],
    rows: usize,
    cols: usize,
) -> Vec<u16> {
    let p = tiles.len();
    let block = cols.div_ceil(p);
    let mut img = vec![u16::MAX; rows * cols];
    for (v, tile) in tiles.iter().enumerate() {
        let first = v * block;
        let lc = block.min(cols.saturating_sub(first));
        assert_eq!(tile.len(), rows * lc, "tile {v} has unexpected size");
        for r in 0..rows {
            for c in 0..lc {
                img[r * cols + first + c] = tile[r * lc + c];
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_core::{spmd, Machine};

    fn small_cfg() -> StereoConfig {
        StereoConfig { rows: 24, cols: 32, n_match: 2, max_disp: 4, window: 2, datasets: 2 }
    }

    fn depth_for(results: &[Vec<(usize, Vec<u16>)>], d: usize, rows: usize, cols: usize) -> Vec<u16> {
        let tiles: Vec<Vec<u16>> = results
            .iter()
            .map(|per_proc| {
                per_proc
                    .iter()
                    .find(|(ds, _)| *ds == d)
                    .map(|(_, t)| t.clone())
                    .unwrap_or_default()
            })
            .collect();
        assemble_depth(&tiles, rows, cols)
    }

    #[test]
    fn dp_matches_reference() {
        let cfg = small_cfg();
        for p in [1usize, 2, 4] {
            let rep = spmd(&Machine::real(p), move |cx| stereo_dp(cx, &cfg));
            for d in 0..cfg.datasets {
                let got = depth_for(&rep.results, d, cfg.rows, cfg.cols);
                let expect = reference_depth(&cfg, d);
                assert_eq!(got, expect, "p={p} d={d}");
            }
        }
    }

    #[test]
    fn recovered_depth_tracks_truth_away_from_edges() {
        // With noiseless synthetic inputs the argmin should recover the
        // generating disparity over most interior pixels.
        let cfg = small_cfg();
        let depth = reference_depth(&cfg, 0);
        let mut hits = 0;
        let mut total = 0;
        for r in 4..cfg.rows - 4 {
            for c in 4..cfg.cols - 12 {
                total += 1;
                if depth[r * cfg.cols + c] == truth_disparity(&cfg, r, c) {
                    hits += 1;
                }
            }
        }
        assert!(hits as f64 / total as f64 > 0.6, "depth recovery too poor: {hits}/{total}");
    }

    #[test]
    fn replicated_covers_all_datasets() {
        let cfg = StereoConfig { datasets: 4, ..small_cfg() };
        let rep = spmd(&Machine::real(4), move |cx| stereo_replicated(cx, &cfg, 2));
        for d in 0..cfg.datasets {
            let module = d % 2;
            let module_results = &rep.results[module * 2..module * 2 + 2];
            let got = depth_for(module_results, d, cfg.rows, cfg.cols);
            assert_eq!(got, reference_depth(&cfg, d), "d={d}");
        }
    }

    #[test]
    fn pipeline_matches_reference() {
        let cfg = StereoConfig { datasets: 3, ..small_cfg() };
        let sets: Vec<usize> = (0..cfg.datasets).collect();
        let rep = spmd(&Machine::real(5), move |cx| {
            stereo_pipeline(cx, &cfg, [2, 2, 1], &sets)
        });
        // G3 = phys 4 (one processor, whole columns).
        let g3 = &rep.results[4];
        assert_eq!(g3.len(), cfg.datasets);
        for (d, tile) in g3 {
            let got = assemble_depth(std::slice::from_ref(tile), cfg.rows, cfg.cols);
            assert_eq!(got, reference_depth(&cfg, *d), "d={d}");
        }
    }

    #[test]
    fn replicated_pipeline_hybrid_matches_reference() {
        let cfg = StereoConfig { datasets: 4, ..small_cfg() };
        let rep = spmd(&Machine::real(6), move |cx| {
            stereo_replicated_pipeline(cx, &cfg, 2, [1, 1, 1])
        });
        let mut seen = vec![false; cfg.datasets];
        for per_proc in &rep.results {
            for (d, tile) in per_proc {
                let got = assemble_depth(std::slice::from_ref(tile), cfg.rows, cfg.cols);
                assert_eq!(got, reference_depth(&cfg, *d), "d={d}");
                seen[*d] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shifts_cause_real_communication() {
        // The disparity shifts must move data between column blocks.
        let cfg = small_cfg();
        let rep = spmd(&Machine::real(4), move |cx| {
            stereo_stream(cx, &cfg, &[0]);
        });
        let msgs: u64 = rep.traffic.iter().map(|(m, _)| m).sum();
        assert!(msgs > 0, "expected shift/halo messages");
    }
}

//! Parallel quicksort with dynamically nested task parallelism —
//! Figure 4 of the paper.
//!
//! The executing processors recursively partition the keys around a pivot
//! and split themselves into two proportionate subgroups, one per
//! partition (`compute_subgroup_sizes` → `TASK_PARTITION qsortPart ::
//! lessG(p1), greaterEqG(p2)`). At `NUMBER_OF_PROCESSORS() == 1` the
//! remaining keys are sorted sequentially. On the way out of the
//! recursion the sorted sub-arrays are merged back with range
//! assignments (`merge_result`).
//!
//! Keys equal to the pivot are separated out (a three-way split) so that
//! heavily duplicated inputs still make progress — a detail the paper's
//! pseudocode leaves to `pick_pivot`.

use fx_core::{block_range, proportional_split, Cx, Size};
use fx_darray::{copy_shift1_range, count_matching, repartition_by, DArray1, Dist1, Participation};

/// Sort a distributed array of keys in place. Must be called with the
/// current group equal to the array's group (the paper's `qsort(a, n)`
/// subroutine entry).
pub fn qsort(cx: &mut Cx, a: &mut DArray1<i64>) {
    qsort_with_leaf(cx, a, 1);
}

/// [`qsort`] with a promotable base case: the recursive subgroup split
/// stops at subgroups of `leaf_group` processors, which sort their range
/// with a bucket pass whose per-bucket sorts run as a heartbeat-promotable
/// loop ([`Cx::pdo_promote`]) — a member whose buckets drew a skewed share
/// of the keys donates its tail to peers that finished early.
/// `leaf_group <= 1` reproduces [`qsort`] exactly.
pub fn qsort_with_leaf(cx: &mut Cx, a: &mut DArray1<i64>, leaf_group: usize) {
    assert_eq!(
        cx.group().gid(),
        a.group().gid(),
        "qsort executes on the array's processor group"
    );
    let n = a.n();
    if n <= 1 {
        return;
    }
    if cx.nprocs() == 1 {
        // Sequential base case: sort the local (complete) copy.
        let local = a.local_mut();
        local.sort_unstable();
        let flops = (n as f64) * (n as f64).log2().max(1.0) * 4.0;
        cx.charge_flops(flops);
        return;
    }
    if cx.nprocs() <= leaf_group.max(1) {
        return bucket_sort_leaf(cx, a);
    }

    let pivot = sample_pivot(cx, a);
    let n_less = count_matching(cx, a, |&v| v < pivot);
    let n_eq = count_matching(cx, a, |&v| v == pivot);
    let n_gtr = n - n_less - n_eq;
    debug_assert!(n_eq >= 1, "pivot is always a present key");

    if n_less == 0 && n_gtr == 0 {
        return; // all keys equal
    }

    if n_less == 0 || n_gtr == 0 {
        // Degenerate split: peel off the pivot-equal keys and recurse on
        // the single non-empty side with the whole group. Progress is
        // guaranteed because n_eq >= 1.
        let side_n = n_less.max(n_gtr);
        let g = cx.group();
        let mut side = DArray1::new(cx, &g, side_n, Dist1::Block, 0i64);
        let mut eq = DArray1::new(cx, &g, n_eq, Dist1::Block, 0i64);
        if n_less > 0 {
            repartition_by(cx, a, |&v| v < pivot, &mut side, &mut eq);
            qsort_with_leaf(cx, &mut side, leaf_group);
            merge_result(cx, a, &side, &eq, pivot, n_less, n_eq);
        } else {
            repartition_by(cx, a, |&v| v > pivot, &mut side, &mut eq);
            qsort_with_leaf(cx, &mut side, leaf_group);
            merge_result_high(cx, a, &side, pivot, n_eq);
        }
        return;
    }

    // compute_subgroup_sizes: processors proportional to work.
    let sizes = proportional_split(cx.nprocs(), &[n_less as f64, n_gtr as f64]);
    let part = cx.task_partition(&[
        ("lessG", Size::Procs(sizes[0])),
        ("greaterEqG", Size::Procs(sizes[1])),
    ]);
    let g_less = part.group("lessG");
    let g_gtr = part.group("greaterEqG");
    // SUBGROUP(lessG) :: aLess ; SUBGROUP(greaterEqG) :: aGreaterEq
    let mut a_less = DArray1::new(cx, &g_less, n_less, Dist1::Block, 0i64);
    let mut a_gtr = DArray1::new(cx, &g_gtr, n_gtr, Dist1::Block, 0i64);
    let mut a_eq = DArray1::new(cx, &g_gtr, n_eq, Dist1::Block, 0i64);

    cx.task_region(&part, |cx, tr| {
        // pick_less_than_pivot / pick_greater_equal_to_pivot: parent scope.
        let mut a_geq = DArray1::new(cx, &g_gtr, n_gtr + n_eq, Dist1::Block, 0i64);
        repartition_by(cx, a, |&v| v < pivot, &mut a_less, &mut a_geq);
        // Separate the equals inside greaterEqG only.
        tr.on(cx, "greaterEqG", |cx| {
            repartition_by(cx, &a_geq, |&v| v > pivot, &mut a_gtr, &mut a_eq);
        });
        // Recurse on disjoint subgroups — the dynamically nested regions.
        tr.on(cx, "lessG", |cx| qsort_with_leaf(cx, &mut a_less, leaf_group));
        tr.on(cx, "greaterEqG", |cx| qsort_with_leaf(cx, &mut a_gtr, leaf_group));
        // merge_result: parent scope range assignments.
        copy_shift1_range(cx, a, 0..n_less, &a_less, 0, Participation::Minimal);
        fill_range(cx, a, n_less, n_eq, pivot);
        let off = n_less + n_eq;
        copy_shift1_range(cx, a, off..n, &a_gtr, -(off as isize), Participation::Minimal);
    });
}

/// Uniform buckets per leaf-group member; more buckets than members is
/// what gives the heartbeat something to donate when keys skew (a member
/// can only part with whole buckets, so the bucket count bounds the
/// donation granularity).
const BUCKETS_PER_PROC: usize = 16;

/// Promotable leaf base case: replicate the subgroup's keys, split the
/// key range into `BUCKETS_PER_PROC * q` uniform buckets, and sort the
/// buckets in a promotable loop (each member owns a block of buckets; a
/// member whose buckets caught a skewed key mass donates its tail on a
/// heartbeat — the buckets are computable anywhere because the key set
/// is replicated, so donated iterations ship no input). The concatenated
/// sorted buckets are the sorted array.
fn bucket_sort_leaf(cx: &mut Cx, a: &mut DArray1<i64>) {
    let n = a.n();
    let q = cx.nprocs();
    // Replicate the leaf's keys (vrank concatenation = global order).
    let keys: Vec<i64> =
        cx.allgather_vecs(a.local().to_vec()).into_iter().flatten().collect();
    debug_assert_eq!(keys.len(), n);
    let min = *keys.iter().min().expect("leaf sorts a non-empty range");
    let max = *keys.iter().max().expect("leaf sorts a non-empty range");
    if min == max {
        return; // all keys equal: already sorted
    }
    let nbuckets = BUCKETS_PER_PROC * q;
    let span = (max as i128 - min as i128 + 1) as u128;
    let bucket_of =
        |v: i64| (((v as i128 - min as i128) as u128 * nbuckets as u128 / span) as usize)
            .min(nbuckets - 1);
    // Replicated bucketing scan (same charge on every member).
    cx.charge_flops(n as f64 * 2.0);

    let my_buckets = block_range(0..nbuckets, q, cx.id());
    let base = my_buckets.start;
    let mut parts: Vec<Vec<i64>> = vec![Vec::new(); my_buckets.len()];
    cx.pdo_promote(
        "bucketSort",
        0..nbuckets,
        |_cx, _b| Vec::<i64>::new(),
        |cx, b, _ins: &[i64]| {
            let mut vals: Vec<i64> =
                keys.iter().copied().filter(|&v| bucket_of(v) == b).collect();
            vals.sort_unstable();
            let len = vals.len() as f64;
            cx.charge_flops(len * len.log2().max(1.0) * 4.0);
            vals
        },
        |_cx, b, vals: Vec<i64>| parts[b - base] = vals,
    );

    // Reassemble: buckets ascend by value and members ascend by bucket,
    // so the vrank concatenation is the fully sorted array.
    let sorted: Vec<i64> = cx
        .allgather_vecs(parts.concat())
        .into_iter()
        .flatten()
        .collect();
    debug_assert_eq!(sorted.len(), n);
    a.for_each_owned(|gi, v| *v = sorted[gi]);
    cx.charge_mem_bytes(std::mem::size_of_val(a.local()) as f64);
}

/// Pick a pivot that is guaranteed to be a present key: the median of the
/// members' local medians (collective over the current group).
fn sample_pivot(cx: &mut Cx, a: &DArray1<i64>) -> i64 {
    let local = a.local();
    let sample = if local.is_empty() {
        (0u8, 0i64)
    } else {
        let mut v: Vec<i64> = local.to_vec();
        let mid = v.len() / 2;
        let (_, m, _) = v.select_nth_unstable(mid);
        (1u8, *m)
    };
    let samples = cx.allgather(sample);
    let mut valid: Vec<i64> =
        samples.into_iter().filter(|(ok, _)| *ok == 1).map(|(_, v)| v).collect();
    assert!(!valid.is_empty(), "pivot sampling on an empty array");
    let mid = valid.len() / 2;
    let (_, m, _) = valid.select_nth_unstable(mid);
    *m
}

/// Write `pivot` into `a[start .. start+len)` — owners write locally, no
/// communication (every processor knows the value: a replicated scalar).
fn fill_range(cx: &mut Cx, a: &mut DArray1<i64>, start: usize, len: usize, pivot: i64) {
    a.for_each_owned(|gi, v| {
        if gi >= start && gi < start + len {
            *v = pivot;
        }
    });
    cx.charge_mem_bytes((len * std::mem::size_of::<i64>()) as f64);
}

/// Merge for the degenerate low side: `a = sorted(side) ++ pivots`.
fn merge_result(
    cx: &mut Cx,
    a: &mut DArray1<i64>,
    side: &DArray1<i64>,
    _eq: &DArray1<i64>,
    pivot: i64,
    n_less: usize,
    n_eq: usize,
) {
    copy_shift1_range(cx, a, 0..n_less, side, 0, Participation::Minimal);
    fill_range(cx, a, n_less, n_eq, pivot);
}

/// Merge for the degenerate high side: `a = pivots ++ sorted(side)`.
fn merge_result_high(
    cx: &mut Cx,
    a: &mut DArray1<i64>,
    side: &DArray1<i64>,
    pivot: i64,
    n_eq: usize,
) {
    fill_range(cx, a, 0, n_eq, pivot);
    let n = a.n();
    copy_shift1_range(cx, a, n_eq..n, side, -(n_eq as isize), Participation::Minimal);
}

/// Convenience wrapper: sort a globally known vector on the current
/// group, returning the sorted result on every member.
pub fn qsort_global(cx: &mut Cx, keys: &[i64]) -> Vec<i64> {
    let g = cx.group();
    let mut a = DArray1::from_global(cx, &g, Dist1::Block, keys);
    qsort(cx, &mut a);
    a.to_global(cx)
}

/// [`qsort_global`] with promotable leaf base cases of `leaf_group`
/// processors (see [`qsort_with_leaf`]).
pub fn qsort_global_promoted(cx: &mut Cx, keys: &[i64], leaf_group: usize) -> Vec<i64> {
    let g = cx.group();
    let mut a = DArray1::from_global(cx, &g, Dist1::Block, keys);
    qsort_with_leaf(cx, &mut a, leaf_group);
    a.to_global(cx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_core::{spmd, Machine};

    fn check_sort(keys: Vec<i64>, p: usize) {
        let mut expect = keys.clone();
        expect.sort_unstable();
        let rep = spmd(&Machine::real(p), move |cx| qsort_global(cx, &keys));
        for r in rep.results {
            assert_eq!(r, expect, "p = {p}");
        }
    }

    #[test]
    fn sorts_reversed_input() {
        for p in [1, 2, 3, 4, 7] {
            check_sort((0..100).rev().collect(), p);
        }
    }

    #[test]
    fn sorts_random_like_input() {
        let keys: Vec<i64> =
            (0..500).map(|i: i64| (i.wrapping_mul(2654435761) % 1000) - 500).collect();
        for p in [1, 2, 4, 8] {
            check_sort(keys.clone(), p);
        }
    }

    #[test]
    fn sorts_with_heavy_duplicates() {
        let keys: Vec<i64> = (0..200).map(|i| i % 3).collect();
        for p in [1, 2, 4] {
            check_sort(keys.clone(), p);
        }
    }

    #[test]
    fn sorts_all_equal() {
        check_sort(vec![7; 64], 4);
    }

    #[test]
    fn sorts_tiny_arrays_on_many_procs() {
        check_sort(vec![], 4);
        check_sort(vec![5], 4);
        check_sort(vec![2, 1], 4);
        check_sort(vec![3, 1, 2], 5);
    }

    #[test]
    fn sorts_already_sorted() {
        check_sort((0..64).collect(), 4);
    }

    #[test]
    fn promoted_leaves_sort_and_match_heartbeat_off() {
        use fx_core::{assert_promotion_transparent, MachineModel};
        let keys: Vec<i64> =
            (0..600).map(|i: i64| (i.wrapping_mul(2654435761) % 997) - 498).collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        for (p, leaf) in [(4, 4), (8, 4), (6, 3)] {
            let m = Machine::simulated(p, MachineModel::paragon());
            let k = keys.clone();
            let rep =
                assert_promotion_transparent(&m, move |cx| qsort_global_promoted(cx, &k, leaf));
            for r in &rep.results {
                assert_eq!(r, &expect, "p = {p}, leaf_group = {leaf}");
            }
        }
    }

    #[test]
    fn promoted_leaves_handle_duplicates_and_tiny_inputs() {
        use fx_core::MachineModel;
        for keys in [vec![], vec![5], vec![7; 64], (0..40).map(|i| i % 3).collect::<Vec<i64>>()] {
            let mut expect = keys.clone();
            expect.sort_unstable();
            let m = Machine::simulated(4, MachineModel::paragon());
            let rep = spmd(&m, move |cx| qsort_global_promoted(cx, &keys, 4));
            for r in rep.results {
                assert_eq!(r, expect);
            }
        }
    }

    #[test]
    fn processors_split_proportionally() {
        // Indirect check: recursion must terminate and sort correctly on a
        // skewed input where one side is much larger.
        let mut keys: Vec<i64> = vec![0; 10];
        keys.extend(0..500);
        check_sort(keys, 6);
    }
}

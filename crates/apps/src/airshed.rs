//! Airshed air-quality simulation (McRae & Russell; paper §5.2,
//! Figure 6).
//!
//! The model advances a concentration matrix — "number of atmospheric
//! layers (5), number of grid points (500–5000) and number of chemical
//! species (35)" — through hourly phases: input the new hour's
//! conditions, a preprocessing transport step, `nsteps` iterations of
//! transport / chemistry / transport, then hourly output.
//!
//! The paper's scaling problem: the input and output phases are mainly
//! sequential — "well under 2% of the total time in sequential
//! execution" — and become the bottleneck once the computation is sped up
//! by data parallelism. The task-parallel version separates input and
//! output into tasks on their own (single-processor) subgroups so they
//! overlap the main computation, recovering ~25% at 64 processors
//! (Figure 6).
//!
//! The concentration matrix is a [`DArray3`] distributed
//! `(*, BLOCK, *)` over grid points; transport exchanges one ghost plane
//! of grid points, chemistry is purely local and dominates compute.

use fx_core::{Cx, Size};
use fx_darray::{assign3, exchange_plane_halo, DArray3, Dist};

use crate::util::unit_hash;

/// Problem parameters for the Airshed model.
#[derive(Debug, Clone, Copy)]
pub struct AirshedConfig {
    /// Grid points (paper: 500–5000).
    pub gridpoints: usize,
    /// Atmospheric layers (paper: 5).
    pub layers: usize,
    /// Chemical species (paper: 35).
    pub species: usize,
    /// Simulated hours.
    pub hours: usize,
    /// Transport/chemistry iterations per hour.
    pub nsteps: usize,
    /// Modeled serial seconds per hourly input phase.
    pub input_seconds: f64,
    /// Modeled serial seconds per hourly output phase.
    pub output_seconds: f64,
    /// Flops per matrix cell for one chemistry step (dominant).
    pub chem_flops_per_cell: f64,
    /// Flops per matrix cell for one transport step.
    pub trans_flops_per_cell: f64,
}

impl AirshedConfig {
    /// A configuration whose serial I/O share matches the paper's "well
    /// under 2% of sequential time" description.
    pub fn paper() -> Self {
        AirshedConfig {
            gridpoints: 2500,
            layers: 5,
            species: 35,
            hours: 4,
            nsteps: 4,
            input_seconds: 0.35,
            output_seconds: 0.35,
            chem_flops_per_cell: 400.0,
            trans_flops_per_cell: 60.0,
        }
    }

    /// Total cells of the concentration matrix.
    pub fn cells(&self) -> usize {
        self.layers * self.gridpoints * self.species
    }

    fn shape(&self) -> [usize; 3] {
        [self.layers, self.gridpoints, self.species]
    }
}

const DIST: (Dist, Dist, Dist) = (Dist::Star, Dist::Block, Dist::Star);

/// One transport step: ghost-plane exchange over grid points plus a
/// diffusion-flavoured per-cell update. Collective over the array group.
fn transport(cx: &mut Cx, conc: &mut DArray3<f64>, cfg: &AirshedConfig) {
    let halo = exchange_plane_halo(cx, conc, 1);
    let (l0, l1, l2) = conc.local_dims();
    if l1 == 0 {
        return;
    }
    let read = conc.local().to_vec();
    // Neighbour plane value for (layer a, local plane b +/- 1, species c).
    let at = |a: usize, b: isize, c: usize| -> f64 {
        if b < 0 {
            if halo.before.is_empty() {
                read[(a * l1) * l2 + c] // global edge: clamp to own first
            } else {
                halo.before[a * l2 + c]
            }
        } else if (b as usize) < l1 {
            read[(a * l1 + b as usize) * l2 + c]
        } else if halo.after.is_empty() {
            read[(a * l1 + l1 - 1) * l2 + c]
        } else {
            halo.after[a * l2 + c]
        }
    };
    let local = conc.local_mut();
    for a in 0..l0 {
        for b in 0..l1 {
            for c in 0..l2 {
                let v = 0.5 * read[(a * l1 + b) * l2 + c]
                    + 0.25 * (at(a, b as isize - 1, c) + at(a, b as isize + 1, c));
                local[(a * l1 + b) * l2 + c] = v;
            }
        }
    }
    cx.charge_flops(cfg.trans_flops_per_cell * (l0 * l1 * l2) as f64);
}

/// One chemistry step: purely local, compute-dominant per-cell work.
fn chemistry(cx: &mut Cx, conc: &mut DArray3<f64>, cfg: &AirshedConfig) {
    for v in conc.local_mut() {
        // A stand-in for the stiff chemistry solve, keeping values bounded.
        *v = (*v * 0.999).abs().min(1.0);
    }
    cx.charge_flops(cfg.chem_flops_per_cell * conc.local().len() as f64);
}

/// Synthetic hourly boundary conditions.
fn hourly_input(hour: usize, layer: usize, g: usize, s: usize) -> f64 {
    unit_hash((hour as u64) << 8 | layer as u64, g as u64, s as u64) * 1e-3
}

/// Transport/chemistry iterations of hour `hour` — "the number of
/// iterations is determined at runtime depending on the hourly input"
/// (paper §5.2). Deterministically derived from the hour's data, varying
/// around the configured base.
pub fn nsteps_for(cfg: &AirshedConfig, hour: usize) -> usize {
    let wiggle = (unit_hash(hour as u64, 0x5747, 0x4E53) * 3.0) as usize; // 0, 1 or 2
    (cfg.nsteps + wiggle).saturating_sub(1).max(1)
}

/// The main computation phase of one hour (pretrans + runtime-determined
/// step loop).
fn compute_hour(cx: &mut Cx, conc: &mut DArray3<f64>, cfg: &AirshedConfig, hour: usize) {
    transport(cx, conc, cfg); // pretrans
    for _ in 0..nsteps_for(cfg, hour) {
        transport(cx, conc, cfg);
        chemistry(cx, conc, cfg);
        transport(cx, conc, cfg);
    }
}

/// Checksum of the local tile, reduced over the current group.
fn checksum(cx: &mut Cx, conc: &DArray3<f64>) -> f64 {
    let local: f64 = conc.local().iter().sum();
    cx.allreduce(local, |a, b| a + b)
}

/// Data-parallel Airshed: the serial I/O phases run on virtual processor
/// 0 of the current group, everyone else waits on the distributed data.
/// Returns the final concentration checksum.
pub fn airshed_dp(cx: &mut Cx, cfg: &AirshedConfig) -> f64 {
    let g = cx.group();
    let mut conc = DArray3::new(cx, &g, cfg.shape(), DIST, 0f64);
    for hour in 0..cfg.hours {
        if cx.id() == 0 {
            cx.charge_seconds(cfg.input_seconds);
        }
        scatter_from_zero(cx, &mut conc, hour);
        compute_hour(cx, &mut conc, cfg, hour);
        gather_to_zero(cx, &conc);
        if cx.id() == 0 {
            cx.charge_seconds(cfg.output_seconds);
            cx.record("hour done");
        }
    }
    checksum(cx, &conc)
}

/// Distribute hour `hour`'s data from virtual processor 0 to the owners
/// (an explicit scatter: 0 materializes and sends each member's block of
/// grid-point planes).
fn scatter_from_zero(cx: &mut Cx, conc: &mut DArray3<f64>, hour: usize) {
    let tag = cx.next_op_tag();
    let p = cx.nprocs();
    let me = cx.id();
    let block = conc.shape()[1].div_ceil(p); // BLOCK plane count
    if me == 0 {
        for v in 1..p {
            let (l0, l1, l2) = conc.local_dims_of(v);
            if l0 * l1 * l2 == 0 {
                continue;
            }
            let first = v * block;
            let mut buf = Vec::with_capacity(l0 * l1 * l2);
            for a in 0..l0 {
                for b in 0..l1 {
                    for c in 0..l2 {
                        buf.push(hourly_input(hour, a, first + b, c));
                    }
                }
            }
            cx.send_v(v, tag, buf);
        }
        conc.for_each_owned(|a, g_, c, val| *val = hourly_input(hour, a, g_, c));
    } else if !conc.local().is_empty() {
        let buf: Vec<f64> = cx.recv_v(0, tag);
        conc.local_mut().copy_from_slice(&buf);
    }
}

/// Gather the concentration matrix to virtual processor 0 for output.
fn gather_to_zero(cx: &mut Cx, conc: &DArray3<f64>) {
    let tag = cx.next_op_tag();
    let p = cx.nprocs();
    let me = cx.id();
    if me == 0 {
        for v in 1..p {
            let (l0, l1, l2) = conc.local_dims_of(v);
            if l0 * l1 * l2 == 0 {
                continue;
            }
            let _block: Vec<f64> = cx.recv_v(v, tag);
        }
    } else if !conc.local().is_empty() {
        cx.send_v(0, tag, conc.local().to_vec());
    }
}

/// Task-parallel Airshed (the paper's improvement): input and output run
/// as tasks on their own single-processor subgroups, overlapping the main
/// computation. Returns the final checksum (on main-group members; the
/// I/O processors return 0).
pub fn airshed_tp(cx: &mut Cx, cfg: &AirshedConfig) -> f64 {
    assert!(cx.nprocs() >= 3, "task-parallel airshed needs >= 3 processors");
    let part = cx.task_partition(&[
        ("input", Size::Procs(1)),
        ("main", Size::Rest),
        ("output", Size::Procs(1)),
    ]);
    let g_in = part.group("input");
    let g_main = part.group("main");
    let g_out = part.group("output");
    // SUBGROUP(input) :: staged ; SUBGROUP(main) :: conc ;
    // SUBGROUP(output) :: outbuf
    let mut staged = DArray3::new(cx, &g_in, cfg.shape(), DIST, 0f64);
    let mut conc = DArray3::new(cx, &g_main, cfg.shape(), DIST, 0f64);
    let mut outbuf = DArray3::new(cx, &g_out, cfg.shape(), DIST, 0f64);
    let mut result = 0.0;

    cx.task_region(&part, |cx, tr| {
        for hour in 0..cfg.hours {
            // The input task preprocesses hour `hour` — overlapping the
            // main task's previous hour thanks to subset skipping.
            tr.on(cx, "input", |cx| {
                cx.charge_seconds(cfg.input_seconds);
                staged.for_each_owned(|a, g_, c, v| *v = hourly_input(hour, a, g_, c));
            });
            // Hand the staged hour to the compute group (parent scope;
            // only input ∪ main participate).
            assign3(cx, &mut conc, &staged);
            tr.on(cx, "main", |cx| {
                compute_hour(cx, &mut conc, cfg, hour);
            });
            // Raw output moves to the output task, which "writes" it
            // while main continues with the next hour.
            assign3(cx, &mut outbuf, &conc);
            tr.on(cx, "output", |cx| {
                cx.charge_seconds(cfg.output_seconds);
                cx.record("hour done");
            });
        }
        if let Some(v) = tr.on(cx, "main", |cx| checksum(cx, &conc)) {
            result = v;
        }
    });
    result
}

/// Serve a batch of Airshed requests: each request is one full
/// simulation day (the configured hour stream), and the group leader
/// reports each request's checksum and completion virtual time. Under
/// the task-parallel version the checksum lives on the main group, whose
/// leader is world virtual rank 1 (rank 0 is the input task), so it is
/// broadcast to the reporting leader first — scheduling changes, the
/// answer does not: the reported checksum is bit-identical to the
/// equivalent one-shot [`airshed_dp`] / [`airshed_tp`] run.
pub fn airshed_requests(
    cx: &mut Cx,
    cfg: &AirshedConfig,
    task_parallel: bool,
    reqs: &[usize],
) -> Vec<crate::util::ReqCompletion<f64>> {
    let mut out = Vec::new();
    for &req in reqs {
        cx.set_trace(fx_core::request_trace_id(req));
        let cs = if task_parallel {
            let v = airshed_tp(cx, cfg);
            cx.bcast(1, v)
        } else {
            airshed_dp(cx, cfg)
        };
        if cx.id() == 0 {
            out.push(crate::util::ReqCompletion { req, done: cx.now(), output: cs });
        }
    }
    out
}

/// Predicted per-hour times of the two program versions on `p`
/// processors under `model` — the little performance model behind
/// [`airshed_best`]. Returns `(t_dp, t_tp)`.
pub fn predict_hour_times(cfg: &AirshedConfig, p: usize, flop_time: f64) -> (f64, f64) {
    // Uses the configured base step count as the estimate; actual
    // hours vary around it (nsteps_for), which the selector tolerates.
    let steps = 1 + 3 * cfg.nsteps;
    let chem_steps = cfg.nsteps;
    let compute_flops = cfg.cells() as f64
        * (steps as f64 * cfg.trans_flops_per_cell
            + chem_steps as f64 * cfg.chem_flops_per_cell);
    let io = cfg.input_seconds + cfg.output_seconds;
    let t_dp = compute_flops * flop_time / p as f64 + io;
    let t_tp = if p >= 3 {
        (compute_flops * flop_time / (p - 2) as f64)
            .max(cfg.input_seconds)
            .max(cfg.output_seconds)
    } else {
        f64::INFINITY
    };
    (t_dp, t_tp)
}

/// Pick and run the better program version for this machine size — the
/// "automatic tools to achieve different performance goals" the paper
/// closes §5.1 with, applied to Figure 6: separated I/O tasks only pay
/// off once the serial phases actually bottleneck the computation.
pub fn airshed_best(cx: &mut Cx, cfg: &AirshedConfig) -> f64 {
    let flop_time = match cx.time_mode() {
        fx_core::TimeMode::Simulated(m) => m.flop_time,
        fx_core::TimeMode::Real => 1e-7,
    };
    let (t_dp, t_tp) = predict_hour_times(cfg, cx.nprocs(), flop_time);
    if t_tp < t_dp {
        airshed_tp(cx, cfg)
    } else {
        airshed_dp(cx, cfg)
    }
}

/// Sequential oracle for the checksum: the same per-hour phase sequence
/// on one in-memory `layers x gridpoints x species` array, with the same
/// edge clamping, so results agree to rounding.
pub fn reference_checksum(cfg: &AirshedConfig) -> f64 {
    let (l, gp, sp) = (cfg.layers, cfg.gridpoints, cfg.species);
    let mut m = vec![0f64; l * gp * sp];
    let idx = |a: usize, b: usize, c: usize| (a * gp + b) * sp + c;
    let seq_transport = |m: &mut Vec<f64>| {
        let read = m.clone();
        for a in 0..l {
            for b in 0..gp {
                for c in 0..sp {
                    let before = read[idx(a, b.saturating_sub(1), c)];
                    let after = read[idx(a, (b + 1).min(gp - 1), c)];
                    m[idx(a, b, c)] = 0.5 * read[idx(a, b, c)] + 0.25 * (before + after);
                }
            }
        }
    };
    let seq_chemistry = |m: &mut Vec<f64>| {
        for v in m.iter_mut() {
            *v = (*v * 0.999).abs().min(1.0);
        }
    };
    for hour in 0..cfg.hours {
        for a in 0..l {
            for b in 0..gp {
                for c in 0..sp {
                    m[idx(a, b, c)] = hourly_input(hour, a, b, c);
                }
            }
        }
        seq_transport(&mut m); // pretrans
        for _ in 0..nsteps_for(cfg, hour) {
            seq_transport(&mut m);
            seq_chemistry(&mut m);
            seq_transport(&mut m);
        }
    }
    m.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_core::{spmd, Machine, MachineModel};

    fn tiny_cfg() -> AirshedConfig {
        AirshedConfig {
            gridpoints: 12,
            layers: 2,
            species: 3,
            hours: 2,
            nsteps: 2,
            input_seconds: 0.05,
            output_seconds: 0.05,
            chem_flops_per_cell: 100.0,
            trans_flops_per_cell: 20.0,
        }
    }

    #[test]
    fn request_adapter_reports_oneshot_identical_checksums() {
        let cfg = tiny_cfg();
        let oneshot_dp =
            spmd(&Machine::simulated(4, MachineModel::paragon()), move |cx| airshed_dp(cx, &cfg))
                .results[0];
        let oneshot_tp =
            spmd(&Machine::simulated(4, MachineModel::paragon()), move |cx| airshed_tp(cx, &cfg))
                .results[1];
        for tp in [false, true] {
            let rep = spmd(&Machine::simulated(4, MachineModel::paragon()), move |cx| {
                airshed_requests(cx, &cfg, tp, &[7, 8])
            });
            let completions = &rep.results[0];
            assert_eq!(completions.len(), 2, "leader reports both requests");
            let expect = if tp { oneshot_tp } else { oneshot_dp };
            for c in completions {
                assert_eq!(c.output.to_bits(), expect.to_bits(), "tp={tp}: bit-identical checksum");
            }
            for r in &rep.results[1..] {
                assert!(r.is_empty(), "only the leader reports");
            }
        }
    }

    #[test]
    fn dp_and_tp_agree_on_the_physics() {
        let cfg = tiny_cfg();
        let dp = spmd(&Machine::real(4), move |cx| airshed_dp(cx, &cfg));
        let tp = spmd(&Machine::real(4), move |cx| airshed_tp(cx, &cfg));
        let dp_val = dp.results[0];
        // TP: main group members (phys 1, 2) hold the checksum.
        let tp_val = tp.results[1];
        assert!(
            (dp_val - tp_val).abs() < 1e-9 * dp_val.abs().max(1.0),
            "dp {dp_val} vs tp {tp_val}"
        );
        assert!(dp_val != 0.0);
    }

    #[test]
    fn dp_matches_sequential_reference() {
        let cfg = tiny_cfg();
        let dp = spmd(&Machine::real(3), move |cx| airshed_dp(cx, &cfg)).results[0];
        let seq = reference_checksum(&cfg);
        assert!((dp - seq).abs() < 1e-9 * seq.abs().max(1.0), "dp {dp} vs seq {seq}");
    }

    #[test]
    fn dp_is_deterministic_across_processor_counts() {
        let cfg = tiny_cfg();
        let a = spmd(&Machine::real(1), move |cx| airshed_dp(cx, &cfg)).results[0];
        let b = spmd(&Machine::real(3), move |cx| airshed_dp(cx, &cfg)).results[0];
        assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn tp_overlaps_io_with_compute() {
        // With serial I/O comparable to the per-hour compute, the
        // task-parallel version must finish measurably earlier.
        let cfg = AirshedConfig {
            gridpoints: 64,
            layers: 2,
            species: 4,
            hours: 4,
            nsteps: 2,
            input_seconds: 0.5,
            output_seconds: 0.5,
            chem_flops_per_cell: 2000.0,
            trans_flops_per_cell: 200.0,
        };
        let m = MachineModel::paragon();
        let dp = spmd(&Machine::simulated(6, m), move |cx| {
            airshed_dp(cx, &cfg);
        });
        let tp = spmd(&Machine::simulated(6, m), move |cx| {
            airshed_tp(cx, &cfg);
        });
        let (t_dp, t_tp) = (dp.makespan(), tp.makespan());
        assert!(
            t_tp < 0.85 * t_dp,
            "task parallelism should overlap I/O: dp {t_dp:.3}s tp {t_tp:.3}s"
        );
    }

    #[test]
    fn best_variant_never_loses_to_either() {
        let cfg = AirshedConfig {
            gridpoints: 64,
            layers: 2,
            species: 4,
            hours: 2,
            nsteps: 2,
            input_seconds: 0.4,
            output_seconds: 0.4,
            chem_flops_per_cell: 2000.0,
            trans_flops_per_cell: 200.0,
        };
        let m = MachineModel::paragon();
        for p in [4usize, 8, 16] {
            let t_dp = spmd(&Machine::simulated(p, m), move |cx| {
                airshed_dp(cx, &cfg);
            })
            .makespan();
            let t_tp = spmd(&Machine::simulated(p, m), move |cx| {
                airshed_tp(cx, &cfg);
            })
            .makespan();
            let t_best = spmd(&Machine::simulated(p, m), move |cx| {
                airshed_best(cx, &cfg);
            })
            .makespan();
            let floor = t_dp.min(t_tp);
            assert!(
                t_best <= floor * 1.05,
                "p={p}: best {t_best:.3} should track min(dp {t_dp:.3}, tp {t_tp:.3})"
            );
        }
    }

    #[test]
    fn gridpoints_not_divisible_by_processors() {
        let cfg = AirshedConfig { gridpoints: 13, ..tiny_cfg() };
        let dp = spmd(&Machine::real(5), move |cx| airshed_dp(cx, &cfg)).results[0];
        let seq = reference_checksum(&cfg);
        assert!((dp - seq).abs() < 1e-9 * seq.abs().max(1.0));
    }
}

//! Barnes-Hut N-body with dynamically nested task parallelism —
//! Figure 7 of the paper (§5.3).
//!
//! Force computation recursively divides the particles into halves, with
//! each half owned by a processor subgroup holding a *partial* tree: the
//! top `k` levels of the Barnes-Hut tree replicated, plus the full
//! subtree over its own particles, with everything else marked remote.
//! A particle whose traversal needs a remote subtree is placed on a
//! **worklist** passed up to the parent subgroup, which retries it
//! against its more complete tree; at the root the tree is complete and
//! the worklist drains. For `p` processors the paper wants
//! `k ≥ log2(p)` replicated levels (and within a small multiple of that
//! to bound memory).
//!
//! Tree construction follows the paper's balanced median-split build
//! (`fx-kernels::nbody::BhTree::build`); it is performed redundantly from
//! the replicated particle set — the parallel build is the same recursive
//! partitioning exercised by `fx-apps::qsort`, so the novel path
//! exercised here is the force/worklist protocol.

use fx_core::{Cx, Size};
use fx_kernels::nbody::{interaction_flops, BhTree, Body};

use crate::util::unit_hash;

/// Parameters for one Barnes-Hut force evaluation.
#[derive(Debug, Clone, Copy)]
pub struct BhConfig {
    /// Particle count.
    pub n: usize,
    /// Multipole acceptance parameter.
    pub theta: f64,
    /// Plummer softening.
    pub eps: f64,
    /// Replicated tree levels per split (`k`); the paper wants
    /// `log2(p) <= k <= c * log2(p)`.
    pub k: usize,
    /// Subgroup size at which the recursive splitting stops and the leaf
    /// solve becomes a *promotable* loop ([`Cx::pdo_promote`]): the leaf
    /// subgroup keeps the static block split of its particle range, but a
    /// member stuck on deep traversals can donate its tail to peers that
    /// finished early. `1` (the default) reproduces the original
    /// recursion exactly — split all the way down to single processors
    /// and solve sequentially with one lumped flop charge.
    pub leaf_group: usize,
}

impl BhConfig {
    /// Defaults: theta 0.4, light softening, 6 replicated levels,
    /// single-processor leaves (no promotable loops).
    pub fn new(n: usize) -> Self {
        BhConfig { n, theta: 0.4, eps: 1e-3, k: 6, leaf_group: 1 }
    }

    /// Stop the recursive split at subgroups of `q` processors and solve
    /// leaves with a promotable loop (heartbeat work donation).
    pub fn with_leaf_group(mut self, q: usize) -> Self {
        self.leaf_group = q;
        self
    }
}

/// Deterministic particle cloud (replicated input).
pub fn make_bodies(n: usize, seed: u64) -> Vec<Body> {
    (0..n)
        .map(|i| Body {
            pos: [
                unit_hash(seed, i as u64, 1),
                unit_hash(seed, i as u64, 2),
                unit_hash(seed, i as u64, 3),
            ],
            mass: 0.5 + unit_hash(seed, i as u64, 4),
        })
        .collect()
}

/// Compute all forces with the recursive subgroup scheme. Returns the
/// force vector **in the input order of `bodies`** on every member of
/// the current group.
pub fn bh_forces(cx: &mut Cx, bodies: &[Body], cfg: &BhConfig) -> Vec<[f64; 3]> {
    // build_bh_tree: replicated build from the replicated particle set.
    let tree = BhTree::build(bodies.to_vec());
    let n = tree.n_bodies();
    let build_flops = (n as f64) * (n as f64).log2().max(1.0) * 10.0;
    cx.charge_flops(build_flops);

    // compute_force over the whole range; at the top the tree is complete,
    // so the returned worklist is empty.
    let (mut solved, leftover) = compute_force(cx, &tree, 0, n, cfg);
    assert!(leftover.is_empty(), "root worklist must drain on the full tree");

    // Assemble everyone's results, mapping tree order → input order.
    let flat: Vec<(u64, [f64; 3])> =
        solved.drain(..).map(|(i, f)| (i as u64, f)).collect();
    let all = cx.allgather_vecs(flat);
    let mut forces = vec![[0.0f64; 3]; n];
    let mut seen = vec![false; n];
    for part in all {
        for (i, f) in part {
            let i = i as usize;
            assert!(!seen[i], "particle {i} solved twice");
            seen[i] = true;
            forces[tree.order[i]] = f;
        }
    }
    assert!(seen.iter().all(|&s| s), "every particle must be solved");
    forces
}

/// `compute_force` of Figure 7: the current group computes forces for
/// particles `lo..hi` of `tree` (which covers at least that range).
/// Returns this processor's solved `(index, force)` pairs plus the
/// worklist of particles needing a fuller tree.
fn compute_force(
    cx: &mut Cx,
    tree: &BhTree,
    lo: usize,
    hi: usize,
    cfg: &BhConfig,
) -> (Vec<(usize, [f64; 3])>, Vec<usize>) {
    if cx.nprocs() == 1 {
        // Leaf of the recursion: sequential force computation, worklist
        // for anything needing remote data.
        return solve_list(cx, tree, (lo..hi).collect(), cfg);
    }
    if cx.nprocs() <= cfg.leaf_group.max(1) {
        // Promotable leaf: the subgroup shares tree (replicated within
        // it), so the range solve can run as a heartbeat-promotable loop
        // — overloaded members donate their tail to idle peers.
        return solve_list_promoted(cx, tree, lo, hi, cfg);
    }

    let mid = lo + (hi - lo) / 2;
    let p = cx.nprocs();
    let sizes = [p / 2, p - p / 2];
    let part = cx.task_partition(&[
        ("subTreeG1", Size::Procs(sizes[0])),
        ("subTreeG2", Size::Procs(sizes[1])),
    ]);

    let mut my_solved = Vec::new();
    let mut my_worklist = Vec::new();
    cx.task_region(&part, |cx, tr| {
        // partition_bh_tree: each half gets top-k levels + its subtree.
        if let Some((s, w)) = tr.on(cx, "subTreeG1", |cx| {
            let sub = tree.split_range(lo, mid, cfg.k);
            cx.charge_mem_bytes((sub.nodes.len() * std::mem::size_of::<fx_kernels::nbody::Node>()) as f64);
            compute_force(cx, &sub, lo, mid, cfg)
        }) {
            my_solved = s;
            my_worklist = w;
        }
        if let Some((s, w)) = tr.on(cx, "subTreeG2", |cx| {
            let sub = tree.split_range(mid, hi, cfg.k);
            cx.charge_mem_bytes((sub.nodes.len() * std::mem::size_of::<fx_kernels::nbody::Node>()) as f64);
            compute_force(cx, &sub, mid, hi, cfg)
        }) {
            my_solved = s;
            my_worklist = w;
        }
    });

    // Parent scope: pool the children's worklists and retry them against
    // this level's (fuller) tree, spread over all current processors.
    let pooled: Vec<u64> = {
        let mine: Vec<u64> = my_worklist.iter().map(|&i| i as u64).collect();
        cx.allgather_vecs(mine).into_iter().flatten().collect()
    };
    let me = cx.id();
    let p = cx.nprocs();
    let my_share: Vec<usize> = pooled
        .iter()
        .enumerate()
        .filter(|(j, _)| j % p == me)
        .map(|(_, &i)| i as usize)
        .collect();
    let (retried, still_remote) = solve_list(cx, tree, my_share, cfg);
    my_solved.extend(retried);
    (my_solved, still_remote)
}

/// Sequentially compute forces for `indices` against `tree`; anything
/// hitting a remote cell goes on the worklist.
fn solve_list(
    cx: &mut Cx,
    tree: &BhTree,
    indices: Vec<usize>,
    cfg: &BhConfig,
) -> (Vec<(usize, [f64; 3])>, Vec<usize>) {
    let mut solved = Vec::new();
    let mut worklist = Vec::new();
    let mut visits = 0usize;
    for i in indices {
        let pos = tree.bodies[i].pos;
        let (f, v) = tree.force_at_counting(pos, cfg.theta, cfg.eps);
        visits += v;
        match f {
            Some(force) => solved.push((i, force)),
            None => worklist.push(i),
        }
    }
    cx.charge_flops(visits as f64 * interaction_flops());
    (solved, worklist)
}

/// Promotable variant of the leaf solve: the subgroup block-splits
/// `lo..hi` and each iteration charges its own traversal cost, so a
/// member that drew the expensive particles can donate its tail on a
/// heartbeat. The tree is replicated within the subgroup, so donated
/// iterations ship no input; the output encodes `Option<[f64; 3]>` as
/// `[fx, fy, fz, flag]`.
fn solve_list_promoted(
    cx: &mut Cx,
    tree: &BhTree,
    lo: usize,
    hi: usize,
    cfg: &BhConfig,
) -> (Vec<(usize, [f64; 3])>, Vec<usize>) {
    let mut solved = Vec::new();
    let mut worklist = Vec::new();
    cx.pdo_promote(
        "bhLeaf",
        lo..hi,
        |_cx, _i| Vec::<f64>::new(),
        |cx, i, _ins: &[f64]| {
            let pos = tree.bodies[i].pos;
            let (f, v) = tree.force_at_counting(pos, cfg.theta, cfg.eps);
            cx.charge_flops(v as f64 * interaction_flops());
            vec![match f {
                Some(force) => [force[0], force[1], force[2], 1.0],
                None => [0.0, 0.0, 0.0, 0.0],
            }]
        },
        |_cx, i, outs: Vec<[f64; 4]>| {
            let o = outs[0];
            if o[3] > 0.5 {
                solved.push((i, [o[0], o[1], o[2]]));
            } else {
                worklist.push(i);
            }
        },
    );
    (solved, worklist)
}

/// One simple simulation step: forces, then a position nudge. Returns
/// the updated bodies in input order (identical on all members). For a
/// proper integrator with velocities see [`bh_simulate`].
pub fn bh_step(cx: &mut Cx, bodies: &[Body], cfg: &BhConfig, dt: f64) -> Vec<Body> {
    let forces = bh_forces(cx, bodies, cfg);
    bodies
        .iter()
        .zip(forces)
        .map(|(b, f)| Body {
            pos: [
                b.pos[0] + dt * dt * f[0],
                b.pos[1] + dt * dt * f[1],
                b.pos[2] + dt * dt * f[2],
            ],
            mass: b.mass,
        })
        .collect()
}

/// Leapfrog (kick-drift-kick) N-body integration over `steps` steps,
/// forces computed by the task-parallel Barnes-Hut each step. Returns
/// the final `(bodies, velocities)` in input order on every member.
///
/// With a reasonable `dt` the integrator is symplectic: total energy
/// (kinetic + softened potential) is conserved to a small bound — the
/// physical correctness check for the whole force pipeline.
pub fn bh_simulate(
    cx: &mut Cx,
    bodies: &[Body],
    velocities: &[[f64; 3]],
    cfg: &BhConfig,
    dt: f64,
    steps: usize,
) -> (Vec<Body>, Vec<[f64; 3]>) {
    assert_eq!(bodies.len(), velocities.len());
    let mut bodies = bodies.to_vec();
    let mut vel = velocities.to_vec();
    let mut acc = bh_forces(cx, &bodies, cfg);
    for _ in 0..steps {
        // Kick (half), drift, re-evaluate, kick (half).
        for (v, a) in vel.iter_mut().zip(&acc) {
            for d in 0..3 {
                v[d] += 0.5 * dt * a[d];
            }
        }
        for (b, v) in bodies.iter_mut().zip(&vel) {
            for (p, vd) in b.pos.iter_mut().zip(v) {
                *p += dt * vd;
            }
        }
        acc = bh_forces(cx, &bodies, cfg);
        for (v, a) in vel.iter_mut().zip(&acc) {
            for d in 0..3 {
                v[d] += 0.5 * dt * a[d];
            }
        }
    }
    (bodies, vel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_kernels::nbody::direct_forces;
    use fx_core::{spmd, Machine};

    fn check_against_direct(n: usize, p: usize, k: usize) {
        let bodies = make_bodies(n, 11);
        let cfg = BhConfig { n, theta: 0.4, eps: 1e-3, k, leaf_group: 1 };
        let rep = spmd(&Machine::real(p), move |cx| bh_forces(cx, &bodies, &cfg));
        // Oracle: sequential BH on the full tree (identical math), and
        // direct sum for physical sanity.
        let bodies2 = make_bodies(n, 11);
        let tree = BhTree::build(bodies2);
        for forces in &rep.results {
            assert_eq!(forces.len(), n);
            let exact = direct_forces(&tree.bodies, cfg.eps);
            let mut sum_sq = 0.0;
            let mut count = 0;
            for (i, b) in tree.bodies.iter().enumerate() {
                // forces[] is input-ordered; tree.bodies is tree-ordered.
                let f = forces[tree.order[i]];
                let seq = tree.force_at(b.pos, cfg.theta, cfg.eps).unwrap();
                for d in 0..3 {
                    assert!(
                        (f[d] - seq[d]).abs() < 1e-9,
                        "parallel differs from sequential BH at particle {i}"
                    );
                }
                let mag = exact[i].iter().map(|x| x * x).sum::<f64>().sqrt();
                if mag > 1e-9 {
                    let err = (0..3)
                        .map(|d| (f[d] - exact[i][d]).powi(2))
                        .sum::<f64>()
                        .sqrt();
                    sum_sq += (err / mag).powi(2);
                    count += 1;
                }
            }
            let rms = (sum_sq / count as f64).sqrt();
            assert!(rms < 0.1, "p={p}: BH RMS error vs direct too large: {rms}");
        }
    }

    #[test]
    fn matches_sequential_bh_one_proc() {
        check_against_direct(64, 1, 3);
    }

    #[test]
    fn matches_sequential_bh_two_procs() {
        check_against_direct(64, 2, 3);
    }

    #[test]
    fn matches_sequential_bh_many_procs() {
        check_against_direct(128, 8, 3);
    }

    #[test]
    fn odd_processor_counts_work() {
        check_against_direct(96, 5, 3);
    }

    #[test]
    fn shallow_replication_still_correct_via_worklists() {
        // k = 1 forces heavy worklist traffic; correctness must not
        // depend on k (only performance does).
        check_against_direct(64, 4, 1);
    }

    #[test]
    fn promoted_leaves_match_plain_recursion() {
        use fx_core::{assert_promotion_transparent, MachineModel};
        let n = 192;
        let bodies = make_bodies(n, 11);
        // Whole group is one leaf: the entire force phase runs as a
        // single promotable loop over the irregular traversals.
        let cfg = BhConfig::new(n).with_leaf_group(4);
        let m = Machine::simulated(4, MachineModel::paragon());
        let rep = assert_promotion_transparent(&m, move |cx| bh_forces(cx, &bodies, &cfg));
        // Same forces as the plain recursion on the same machine.
        let bodies2 = make_bodies(n, 11);
        let plain_cfg = BhConfig::new(n);
        let plain = spmd(&m, move |cx| bh_forces(cx, &bodies2, &plain_cfg));
        assert_eq!(rep.results[0], plain.results[0]);
    }

    #[test]
    fn step_moves_particles() {
        let bodies = make_bodies(32, 3);
        let cfg = BhConfig { n: 32, theta: 0.4, eps: 1e-2, k: 3, leaf_group: 1 };
        let rep = spmd(&Machine::real(2), move |cx| bh_step(cx, &bodies, &cfg, 1e-3));
        let moved = &rep.results[0];
        assert_eq!(moved.len(), 32);
        // Same on all processors, and positions changed (in input order).
        assert_eq!(rep.results[0], rep.results[1]);
        let original = make_bodies(32, 3);
        let displaced = moved
            .iter()
            .zip(&original)
            .filter(|(a, b)| a.pos != b.pos)
            .count();
        assert!(displaced > 0);
        // Masses untouched, pairing preserved.
        for (a, b) in moved.iter().zip(&original) {
            assert_eq!(a.mass, b.mass);
        }
    }

    #[test]
    fn leapfrog_conserves_energy() {
        use fx_kernels::nbody::total_energy;
        let n = 48;
        let bodies = make_bodies(n, 21);
        let vel = vec![[0.0f64; 3]; n];
        let cfg = BhConfig { n, theta: 0.2, eps: 0.05, k: 4, leaf_group: 1 };
        let e0 = total_energy(&bodies, &vel, cfg.eps);
        let rep = spmd(&Machine::real(4), move |cx| {
            bh_simulate(cx, &bodies, &vel, &cfg, 2e-4, 25)
        });
        let (final_bodies, final_vel) = &rep.results[0];
        let e1 = total_energy(final_bodies, final_vel, cfg.eps);
        let drift = ((e1 - e0) / e0).abs();
        assert!(drift < 0.02, "energy drift too large: {e0} → {e1} ({drift:.4})");
        // Something actually happened.
        let moved = final_bodies
            .iter()
            .zip(make_bodies(n, 21))
            .filter(|(a, b)| a.pos != b.pos)
            .count();
        assert!(moved > 0);
        // Identical on all members.
        assert_eq!(rep.results[0], rep.results[3]);
    }
}

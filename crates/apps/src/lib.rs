#![warn(missing_docs)]

//! # fx-apps — the paper's applications
//!
//! Every program evaluated in *"A New Model for Integrated Nested Task
//! and Data Parallel Programming"* (Subhlok & Yang, PPoPP '97), written
//! against the Fx model (`fx-core` + `fx-darray`) and validated against
//! sequential oracles:
//!
//! | Module | Paper reference | Task structure |
//! |---|---|---|
//! | [`ffthist`] | Figures 2, 3, 5; Table 1 | data-parallel pipeline, replication, hybrids |
//! | [`radar`] | Table 1 (narrowband tracking radar) | replication |
//! | [`stereo`] | Table 1 (multibaseline stereo) | replication, pipelines |
//! | [`airshed`] | §5.2, Figure 6 | separated I/O tasks |
//! | [`qsort`] | Figure 4 | dynamically nested partitions |
//! | [`barnes_hut`] | §5.3, Figure 7 | nested partitions + worklists |
//!
//! All stream programs record `set start` / `set done` events, from which
//! the benchmark harnesses compute the throughput and latency numbers the
//! paper reports.

pub mod airshed;
pub mod barnes_hut;
pub mod ffthist;
pub mod multiblock;
pub mod qsort;
pub mod radar;
pub mod stereo;
pub mod util;

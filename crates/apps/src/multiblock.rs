//! Multiblock mesh computation — the paper's §1 motivating class
//! ("multiblock codes containing irregularly structured regular meshes
//! are more naturally programmed as interacting tasks with each task
//! representing a regular mesh, rather than as a single large irregular
//! application") and the concrete structure of Figure 1.
//!
//! Two regular 2-D Jacobi blocks of *different sizes* are coupled along
//! one edge: block A's right boundary is block B's left boundary. The
//! task-parallel program gives each block its own processor subgroup
//! sized by its area (`proportional_split`), iterates both blocks
//! independently in `ON SUBGROUP` blocks, and exchanges the interface
//! columns in parent scope each step — Figure 1's
//! `proca / procb / transfer` pattern exactly.
//!
//! The data-parallel alternative runs the blocks one after another on
//! all processors; for blocks too small to use the whole machine, the
//! task version wins — the paper's reason multiblock codes want task
//! parallelism.

use fx_core::{proportional_split, Cx, Size};
use fx_darray::{assign1, exchange_col_halo, DArray1, DArray2, Dist, Dist1};

/// Problem parameters: two coupled blocks sharing an interface of
/// `rows` cells.
#[derive(Debug, Clone, Copy)]
pub struct MultiblockConfig {
    /// Rows of both blocks (the interface length).
    pub rows: usize,
    /// Columns of block A.
    pub cols_a: usize,
    /// Columns of block B.
    pub cols_b: usize,
    /// Coupled Jacobi iterations.
    pub steps: usize,
    /// Fixed boundary values on the far edges.
    pub left_bc: f64,
    /// Boundary value on B's right edge.
    pub right_bc: f64,
}

impl MultiblockConfig {
    /// A small asymmetric pair (B three times wider than A).
    pub fn demo() -> Self {
        MultiblockConfig { rows: 32, cols_a: 16, cols_b: 48, steps: 40, left_bc: 1.0, right_bc: 0.0 }
    }
}

/// One Jacobi sweep of a `(*, BLOCK)` column-distributed block with
/// prescribed ghost columns on its outer edges.
///
/// `left_ghost` / `right_ghost` are full columns (length `rows`) supplied
/// by either a physical boundary condition or the neighbouring block's
/// interface; interior block boundaries come from the halo exchange.
fn jacobi_sweep(
    cx: &mut Cx,
    a: &mut DArray2<f64>,
    left_ghost: &[f64],
    right_ghost: &[f64],
) {
    let halo = exchange_col_halo(cx, a, 1);
    let (lr, lc) = a.local_dims();
    if lc == 0 {
        return;
    }
    let rows = a.rows();
    assert_eq!(lr, rows, "(*, BLOCK) keeps whole columns local");
    let first_col = a.global_of_local(0, 0).1;
    let last_col = a.global_of_local(0, lc - 1).1;
    let total_cols = a.cols();
    let read = a.local().to_vec();
    let at = |r: usize, c: isize| -> f64 {
        if c < 0 {
            if first_col == 0 {
                left_ghost[r]
            } else {
                halo.left[r]
            }
        } else if (c as usize) < lc {
            read[r * lc + c as usize]
        } else if last_col + 1 == total_cols {
            right_ghost[r]
        } else {
            halo.right[r]
        }
    };
    let local = a.local_mut();
    for r in 0..rows {
        for c in 0..lc {
            // Top/bottom edges reflect (insulated rows); left/right couple.
            let up = if r == 0 { read[r * lc + c] } else { read[(r - 1) * lc + c] };
            let down = if r + 1 == rows { read[r * lc + c] } else { read[(r + 1) * lc + c] };
            let left = at(r, c as isize - 1);
            let right = at(r, c as isize + 1);
            local[r * lc + c] = 0.25 * (up + down + left + right);
        }
    }
    cx.charge_flops(4.0 * (rows * lc) as f64);
}

/// Task-parallel coupled solve (Figure 1's structure). Returns the
/// checksums `(sum_a, sum_b)` on every processor.
pub fn multiblock_tp(cx: &mut Cx, cfg: &MultiblockConfig) -> (f64, f64) {
    let p = cx.nprocs();
    assert!(p >= 2, "need at least two processors for two block tasks");
    let sizes = proportional_split(p, &[(cfg.rows * cfg.cols_a) as f64, (cfg.rows * cfg.cols_b) as f64]);
    let part = cx.task_partition(&[
        ("Agroup", Size::Procs(sizes[0])),
        ("Bgroup", Size::Procs(sizes[1])),
    ]);
    let ga = part.group("Agroup");
    let gb = part.group("Bgroup");
    let dist = (Dist::Star, Dist::Block);
    // SUBGROUP(Agroup) :: A ; SUBGROUP(Bgroup) :: B
    let mut a = DArray2::new(cx, &ga, [cfg.rows, cfg.cols_a], dist, 0.0);
    let mut b = DArray2::new(cx, &gb, [cfg.rows, cfg.cols_b], dist, 0.0);
    // Interface staging: the boundary column of each block, mapped to the
    // *owner's* subgroup, shipped to the other side in parent scope.
    let mut a_edge = DArray1::new(cx, &ga, cfg.rows, Dist1::Replicated, cfg.left_bc);
    let mut b_edge = DArray1::new(cx, &gb, cfg.rows, Dist1::Replicated, cfg.right_bc);
    let mut a_ghost = DArray1::new(cx, &ga, cfg.rows, Dist1::Replicated, cfg.right_bc);
    let mut b_ghost = DArray1::new(cx, &gb, cfg.rows, Dist1::Replicated, cfg.left_bc);
    let left_bc = vec![cfg.left_bc; cfg.rows];
    let right_bc = vec![cfg.right_bc; cfg.rows];

    cx.task_region(&part, |cx, tr| {
        for _step in 0..cfg.steps {
            // CALL proca(A): one sweep, then stage the interface column.
            tr.on(cx, "Agroup", |cx| {
                let ghost = a_ghost.local().to_vec();
                jacobi_sweep(cx, &mut a, &left_bc, &ghost);
                stage_edge(cx, &a, cfg.cols_a - 1, &mut a_edge);
            });
            // CALL procb(B).
            tr.on(cx, "Bgroup", |cx| {
                let ghost = b_ghost.local().to_vec();
                jacobi_sweep(cx, &mut b, &ghost, &right_bc);
                stage_edge(cx, &b, 0, &mut b_edge);
            });
            // CALL transfer(A, B): parent scope — the two interface
            // columns swap sides; only the owners participate.
            assign1(cx, &mut b_ghost, &a_edge);
            assign1(cx, &mut a_ghost, &b_edge);
        }
    });

    let sum_a = cx.allreduce(a.fold_owned(0.0, |s, _, _, v| s + v), |x, y| x + y);
    let sum_b = cx.allreduce(b.fold_owned(0.0, |s, _, _, v| s + v), |x, y| x + y);
    (sum_a, sum_b)
}

/// Stage a block's interface column into a replicated edge array
/// (collective over the block's subgroup: the owner broadcasts).
fn stage_edge(cx: &mut Cx, a: &DArray2<f64>, col: usize, edge: &mut DArray1<f64>) {
    let rows = a.rows();
    let owner_phys = a.owner_phys(0, col);
    let owner_v = a
        .group()
        .vrank_of_phys(owner_phys)
        .expect("column owner is a group member");
    let mine: Vec<f64> = if cx.phys_rank() == owner_phys {
        let (lr, lc) = a.local_dims();
        let (_, lc0) = a.local_of_global(0, col).expect("owner holds the column");
        (0..lr).map(|r| a.local()[r * lc + lc0]).collect()
    } else {
        Vec::new()
    };
    let col_vals = cx.bcast(owner_v, mine);
    assert_eq!(col_vals.len(), rows);
    edge.local_mut().copy_from_slice(&col_vals);
}

/// Sequential oracle: the same coupled iteration on two in-memory blocks.
pub fn reference_checksums(cfg: &MultiblockConfig) -> (f64, f64) {
    let (rows, ca, cb) = (cfg.rows, cfg.cols_a, cfg.cols_b);
    let mut a = vec![0.0f64; rows * ca];
    let mut b = vec![0.0f64; rows * cb];
    let mut a_ghost = vec![cfg.right_bc; rows]; // B's interface col as seen by A
    let mut b_ghost = vec![cfg.left_bc; rows]; // A's interface col as seen by B
    let sweep = |m: &mut Vec<f64>, cols: usize, left: &[f64], right: &[f64]| {
        let read = m.clone();
        for r in 0..rows {
            for c in 0..cols {
                let up = if r == 0 { read[r * cols + c] } else { read[(r - 1) * cols + c] };
                let down =
                    if r + 1 == rows { read[r * cols + c] } else { read[(r + 1) * cols + c] };
                let l = if c == 0 { left[r] } else { read[r * cols + c - 1] };
                let rr = if c + 1 == cols { right[r] } else { read[r * cols + c + 1] };
                m[r * cols + c] = 0.25 * (up + down + l + rr);
            }
        }
    };
    let left_bc = vec![cfg.left_bc; rows];
    let right_bc = vec![cfg.right_bc; rows];
    for _ in 0..cfg.steps {
        sweep(&mut a, ca, &left_bc, &a_ghost);
        sweep(&mut b, cb, &b_ghost, &right_bc);
        // transfer: stage the post-sweep interface columns.
        for r in 0..rows {
            b_ghost[r] = a[r * ca + (ca - 1)];
            a_ghost[r] = b[r * cb];
        }
    }
    (a.iter().sum(), b.iter().sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_core::{spmd, Machine, MachineModel};

    #[test]
    fn tp_matches_sequential_reference() {
        let cfg = MultiblockConfig { rows: 8, cols_a: 5, cols_b: 11, steps: 12, left_bc: 1.0, right_bc: -0.5 };
        let (ea, eb) = reference_checksums(&cfg);
        for p in [2usize, 3, 6] {
            let rep = spmd(&Machine::real(p), move |cx| multiblock_tp(cx, &cfg));
            for &(sa, sb) in &rep.results {
                assert!((sa - ea).abs() < 1e-9 * ea.abs().max(1.0), "p={p}: A {sa} vs {ea}");
                assert!((sb - eb).abs() < 1e-9 * eb.abs().max(1.0), "p={p}: B {sb} vs {eb}");
            }
        }
    }

    #[test]
    fn heat_flows_across_the_interface() {
        // With a hot left boundary and cold right boundary, both blocks
        // end up with interior values strictly between the two.
        let cfg = MultiblockConfig { rows: 8, cols_a: 6, cols_b: 6, steps: 200, left_bc: 1.0, right_bc: 0.0 };
        let (sa, sb) = reference_checksums(&cfg);
        let mean_a = sa / (cfg.rows * cfg.cols_a) as f64;
        let mean_b = sb / (cfg.rows * cfg.cols_b) as f64;
        assert!(mean_a > mean_b, "heat gradient direction: {mean_a} vs {mean_b}");
        assert!(mean_a > 0.3 && mean_a < 1.0, "A mean {mean_a}");
        assert!(mean_b > 0.0 && mean_b < 0.7, "B mean {mean_b}");
    }

    #[test]
    fn subgroups_are_sized_by_block_area() {
        let cfg = MultiblockConfig { rows: 8, cols_a: 4, cols_b: 12, steps: 1, left_bc: 0.0, right_bc: 0.0 };
        let rep = spmd(&Machine::real(8), move |cx| {
            multiblock_tp(cx, &cfg);
            cx.nprocs()
        });
        // After the region exits the group is the world again; the split
        // itself (2 vs 6 for areas 32 vs 96) is checked via proportional_split.
        assert!(rep.results.iter().all(|&n| n == 8));
        // Largest-remainder with a mandatory processor each: 1+1.5 -> 3, 1+4.5 -> 5.
        assert_eq!(proportional_split(8, &[32.0, 96.0]), vec![3, 5]);
    }

    #[test]
    fn blocks_iterate_concurrently_in_virtual_time() {
        // The two block tasks must overlap: total time ~ max(block times),
        // not their sum.
        let cfg = MultiblockConfig { rows: 32, cols_a: 24, cols_b: 24, steps: 20, left_bc: 1.0, right_bc: 0.0 };
        let rep = spmd(&Machine::simulated(2, MachineModel::zero_comm(1e-6)), move |cx| {
            multiblock_tp(cx, &cfg);
            cx.now()
        });
        // Each block: 4 flops x 32x24 cells x 20 steps = 61440 flops = 61.4ms.
        // Concurrent: ~61 ms; serialized would be ~123 ms.
        let t = rep.results.iter().cloned().fold(0.0f64, f64::max);
        assert!(t < 0.1, "blocks did not overlap: {t} s");
    }
}

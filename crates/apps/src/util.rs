//! Shared helpers for the applications: deterministic cheap input
//! synthesis, event labels, and the replicated-modules skeleton.

use fx_core::{Cx, Size};
use fx_kernels::nbody::Body;
use fx_kernels::Complex;

/// Event label marking the start of one data set's processing.
pub const SET_START: &str = "set start";
/// Event label marking the completion of one data set's processing.
pub const SET_DONE: &str = "set done";

/// One served request's completion, as observed by the canonical
/// completing processor (the lowest-ranked member of the group that
/// produces the result). `req` is the caller-side request index, `done`
/// the completing processor's virtual time right after the result is
/// available, and `output` the request's result — which must be
/// bit-identical to the same computation run one-shot, because batching
/// and mapping change scheduling, never answers.
#[derive(Debug, Clone, PartialEq)]
pub struct ReqCompletion<T> {
    /// Caller-side request index (position in the submitted batch/trace).
    pub req: usize,
    /// Virtual completion time on the completing processor.
    pub done: f64,
    /// The request's output.
    pub output: T,
}

/// Cheap deterministic hash → `[0, 1)` float. Used to synthesize input
/// elements on demand (each processor generates exactly the elements it
/// owns — no replicated generation work, mirroring a parallel sensor
/// feed).
#[inline]
pub fn unit_hash(a: u64, b: u64, c: u64) -> f64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
        .wrapping_add(c.wrapping_mul(0x1656_67B1_9E37_79F9));
    z ^= z >> 33;
    z = z.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z ^= z >> 33;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Synthetic complex sample for dataset `d`, element `(r, c)`.
#[inline]
pub fn complex_input(d: usize, r: usize, c: usize) -> Complex {
    Complex::new(
        2.0 * unit_hash(d as u64, r as u64, c as u64) - 1.0,
        2.0 * unit_hash(d as u64 ^ 0xABCD, r as u64, c as u64) - 1.0,
    )
}

/// Synthetic real sample for dataset `d`, element `(r, c)`.
#[inline]
pub fn real_input(d: usize, r: usize, c: usize) -> f32 {
    (255.0 * unit_hash(d as u64, r as u64, c as u64)) as f32
}

/// Deterministic Plummer-sphere particle cloud: density falls off as
/// `(1 + r²/a²)^(-5/2)` around a dense core, so Barnes-Hut traversals
/// for core particles open far more cells than halo particles — the
/// classic irregular-work input for load-balancing experiments (a
/// uniform cloud gives every particle near-identical cost).
pub fn make_plummer_bodies(n: usize, seed: u64) -> Vec<Body> {
    let a = 0.05; // core radius, well inside the unit box
    (0..n)
        .map(|i| {
            let u = unit_hash(seed, i as u64, 1).clamp(1e-6, 0.999);
            let r = (a / (u.powf(-2.0 / 3.0) - 1.0).sqrt()).min(0.45);
            let z = 2.0 * unit_hash(seed, i as u64, 2) - 1.0;
            let phi = std::f64::consts::TAU * unit_hash(seed, i as u64, 3);
            let s = (1.0 - z * z).sqrt();
            Body {
                pos: [
                    0.5 + r * s * phi.cos(),
                    0.5 + r * s * phi.sin(),
                    0.5 + r * z,
                ],
                mass: 0.5 + unit_hash(seed, i as u64, 4),
            }
        })
        .collect()
}

/// Deterministic adversarial key set for sorting: a dense, duplicate-heavy
/// cluster near zero plus sparse keys of enormous magnitude. The outliers
/// stretch the key range so uniform splitters (and median-of-medians
/// pivots) concentrate almost all keys on one side — the worst case for
/// static partitioning and the best case for work donation.
pub fn adversarial_keys(n: usize, seed: u64) -> Vec<i64> {
    (0..n)
        .map(|i| {
            let u = unit_hash(seed, i as u64, 9);
            if i % 16 == 0 {
                (u * 9.0e17) as i64 // sparse halo of huge keys
            } else {
                (u * 1024.0) as i64 // dense duplicate-heavy cluster
            }
        })
        .collect()
}

/// Replicated data parallelism (Figure 3's structure, generalized):
/// divide the current group into `replicas` equal modules and run
/// `f(cx, module_index)` on the module this processor belongs to.
/// Returns this processor's module result.
pub fn replicated_modules<R>(
    cx: &mut Cx,
    replicas: usize,
    f: impl FnOnce(&mut Cx, usize) -> R,
) -> R {
    let p = cx.nprocs();
    assert!(replicas >= 1, "need at least one module");
    assert!(
        p.is_multiple_of(replicas),
        "replicas ({replicas}) must divide the group size ({p})"
    );
    let per = p / replicas;
    let spec: Vec<(String, Size)> =
        (0..replicas).map(|r| (format!("R{r}"), Size::Procs(per))).collect();
    let spec_refs: Vec<(&str, Size)> = spec.iter().map(|(s, z)| (s.as_str(), *z)).collect();
    let part = cx.task_partition(&spec_refs);
    let mut f = Some(f);
    let mut out = None;
    cx.task_region(&part, |cx, tr| {
        for r in 0..replicas {
            let name = format!("R{r}");
            if let Some(res) = tr.on(cx, &name, |cx| (f.take().expect("module runs once"))(cx, r))
            {
                out = Some(res);
            }
        }
    });
    out.expect("every processor belongs to exactly one module")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_core::{spmd, Machine};

    #[test]
    fn replicated_modules_assigns_each_processor_once() {
        let rep = spmd(&Machine::real(6), |cx| {
            replicated_modules(cx, 3, |cx, module| {
                assert_eq!(cx.nprocs(), 2);
                (module, cx.id())
            })
        });
        let got: Vec<(usize, usize)> = rep.results;
        assert_eq!(got, vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]);
    }

    #[test]
    fn modules_compute_independently() {
        let rep = spmd(&Machine::real(4), |cx| {
            replicated_modules(cx, 2, |cx, module| {
                cx.allreduce((module as u64 + 1) * 10, |a, b| a + b)
            })
        });
        assert_eq!(rep.results, vec![20, 20, 40, 40]);
    }

    #[test]
    fn hash_is_deterministic_and_in_range() {
        for i in 0..1000u64 {
            let v = unit_hash(i, i * 3, i * 7);
            assert!((0.0..1.0).contains(&v));
            assert_eq!(v, unit_hash(i, i * 3, i * 7));
        }
    }

    #[test]
    fn inputs_vary_with_all_arguments() {
        assert_ne!(complex_input(0, 1, 2), complex_input(1, 1, 2));
        assert_ne!(complex_input(0, 1, 2), complex_input(0, 2, 2));
        assert_ne!(complex_input(0, 1, 2), complex_input(0, 1, 3));
        assert_ne!(real_input(0, 1, 2), real_input(3, 1, 2));
    }
}

//! Narrowband tracking radar (MIT Lincoln Laboratory benchmark; Table 1
//! row 3).
//!
//! Per the paper, processing one data set consists of four steps: a
//! **corner turn** to form the transposed matrix, independent **row
//! FFTs** (Doppler processing per range gate), **scaling**, and
//! **thresholding**. The paper's 512x10x4 data sets (512 range gates ×
//! 10 dwells × 4 channels) are modelled as 40-pulse × 512-range complex
//! matrices; the 40-point Doppler FFT runs through Bluestein's
//! arbitrary-length algorithm (`fx_kernels::fft::fft_any`).
//!
//! The data-parallel program cannot use more processors than there are
//! FFT batches profitably — which is exactly why the paper's best
//! task-parallel mapping (replication) tripled throughput *without* a
//! latency penalty: it soaked up processors the data-parallel structure
//! could not.

use fx_core::{Cx, Size};
use fx_darray::{assign2, transpose2, DArray2, Dist};
use fx_kernels::fft::{fft_any, fft_any_flops};
use fx_kernels::signal::{scale_flops, threshold_flops};
use fx_kernels::Complex;

use crate::util::{complex_input, replicated_modules, SET_DONE, SET_START};

/// Problem parameters for the radar pipeline.
#[derive(Debug, Clone, Copy)]
pub struct RadarConfig {
    /// Range gates (the paper's 512).
    pub ranges: usize,
    /// Pulses per dwell — the Doppler FFT length (any length; Bluestein
    /// handles non-powers-of-two).
    pub pulses: usize,
    /// Data sets in the stream.
    pub datasets: usize,
    /// Scaling gain.
    pub gain: f64,
    /// Detection threshold.
    pub threshold: f64,
}

impl RadarConfig {
    /// The paper's data-set scale: 512 range gates, 40 pulse-channels
    /// (10 dwells × 4 channels — the exact 512x10x4 shape).
    pub fn paper() -> Self {
        RadarConfig { ranges: 512, pulses: 40, datasets: 16, gain: 0.125, threshold: 0.8 }
    }
}

/// Sequential oracle: detection count for dataset `d`.
pub fn reference_detections(cfg: &RadarConfig, d: usize) -> u64 {
    let (p, r) = (cfg.pulses, cfg.ranges);
    // Input is pulses x ranges; corner turn to ranges x pulses.
    let mut work = vec![Complex::ZERO; p * r];
    for pr in 0..p {
        for rg in 0..r {
            work[rg * p + pr] = complex_input(d, pr, rg);
        }
    }
    let mut count = 0u64;
    for rg in 0..r {
        let row = &mut work[rg * p..(rg + 1) * p];
        let transformed = fft_any(row, false);
        row.copy_from_slice(&transformed);
        for z in row.iter_mut() {
            *z = z.scale(cfg.gain);
        }
        count += row.iter().filter(|z| z.abs() >= cfg.threshold).count() as u64;
    }
    count
}

/// Process the given data sets data-parallel on the current group,
/// returning `(dataset, detections)` pairs (identical on every member).
pub fn radar_stream(cx: &mut Cx, cfg: &RadarConfig, sets: &[usize]) -> Vec<(usize, u64)> {
    let g = cx.group();
    let (p, r) = (cfg.pulses, cfg.ranges);
    // The sensor delivers the dwell distributed *by pulse* — so at most
    // `pulses` processors hold input, the parallelization-structure limit
    // the paper cites for this program — and the corner turn to the
    // by-range-gate layout is a genuine all-to-all.
    let mut input = DArray2::new(cx, &g, [p, r], (Dist::Block, Dist::Star), Complex::ZERO);
    let mut work = DArray2::new(cx, &g, [r, p], (Dist::Block, Dist::Star), Complex::ZERO);
    let mut out = Vec::with_capacity(sets.len());
    for &d in sets {
        if cx.id() == 0 {
            cx.record(SET_START);
        }
        // Sensor feed: each owner generates its slice of the dwell.
        input.for_each_owned(|pr, rg, v| *v = complex_input(d, pr, rg));
        cx.charge_mem_bytes(std::mem::size_of_val(input.local()) as f64);
        // Corner turn: the all-to-all redistribution.
        transpose2(cx, &mut work, &input);
        // Doppler FFT per range gate + scaling + thresholding, all local.
        let (lr, _) = work.local_dims();
        let mut local_count = 0u64;
        for row in 0..lr {
            let slice = work.local_row_mut(row);
            let transformed = fft_any(slice, false);
            slice.copy_from_slice(&transformed);
            for z in slice.iter_mut() {
                *z = z.scale(cfg.gain);
            }
            local_count += slice.iter().filter(|z| z.abs() >= cfg.threshold).count() as u64;
        }
        cx.charge_flops(
            fft_any_flops(p) * lr as f64 + scale_flops(p * lr) + threshold_flops(p * lr),
        );
        let total = cx.allreduce(local_count, |a, b| a + b);
        if cx.id() == 0 {
            cx.record(SET_DONE);
        }
        out.push((d, total));
    }
    out
}

/// Data-parallel radar over the whole stream.
pub fn radar_dp(cx: &mut Cx, cfg: &RadarConfig) -> Vec<u64> {
    let sets: Vec<usize> = (0..cfg.datasets).collect();
    radar_stream(cx, cfg, &sets).into_iter().map(|(_, c)| c).collect()
}

/// Replicated radar: `replicas` modules, datasets dealt round-robin —
/// the paper's winning mapping for this program. Returns this module's
/// `(dataset, detections)` pairs.
pub fn radar_replicated(cx: &mut Cx, cfg: &RadarConfig, replicas: usize) -> Vec<(usize, u64)> {
    replicated_modules(cx, replicas, |cx, rep| {
        let my_sets: Vec<usize> = (0..cfg.datasets).filter(|d| d % replicas == rep).collect();
        radar_stream(cx, cfg, &my_sets)
    })
}

/// Replication combined with pipelining — the paper presents exactly
/// this combination for the sensor applications (§3.3): `replicas`
/// modules, each an acquisition→FFT→threshold pipeline with the given
/// stage sizes. Returns this module's G3-held `(dataset, detections)`.
pub fn radar_replicated_pipeline(
    cx: &mut Cx,
    cfg: &RadarConfig,
    replicas: usize,
    stage_procs: [usize; 3],
) -> Vec<(usize, u64)> {
    replicated_modules(cx, replicas, |cx, rep| {
        let my_sets: Vec<usize> = (0..cfg.datasets).filter(|d| d % replicas == rep).collect();
        radar_pipeline(cx, cfg, stage_procs, &my_sets)
    })
}

/// Pipelined radar: acquisition (G1) → Doppler FFT + scaling (G2) →
/// thresholding (G3), the corner turn riding the G1→G2 transfer.
/// Returns `(dataset, detections)` pairs on G3 members, empty elsewhere.
pub fn radar_pipeline(
    cx: &mut Cx,
    cfg: &RadarConfig,
    procs: [usize; 3],
    sets: &[usize],
) -> Vec<(usize, u64)> {
    assert_eq!(
        procs.iter().sum::<usize>(),
        cx.nprocs(),
        "pipeline stage processors must sum to the group size"
    );
    let part = cx.task_partition(&[
        ("G1", Size::Procs(procs[0])),
        ("G2", Size::Procs(procs[1])),
        ("G3", Size::Procs(procs[2])),
    ]);
    let g1 = part.group("G1");
    let g2 = part.group("G2");
    let g3 = part.group("G3");
    let (p, r) = (cfg.pulses, cfg.ranges);
    let mut input = DArray2::new(cx, &g1, [p, r], (Dist::Block, Dist::Star), Complex::ZERO);
    let mut work = DArray2::new(cx, &g2, [r, p], (Dist::Block, Dist::Star), Complex::ZERO);
    let mut staged = DArray2::new(cx, &g3, [r, p], (Dist::Block, Dist::Star), Complex::ZERO);
    let mut out = Vec::new();

    cx.task_region(&part, |cx, tr| {
        for &d in sets {
            tr.on(cx, "G1", |cx| {
                if cx.id() == 0 {
                    cx.record(SET_START);
                }
                input.for_each_owned(|pr, rg, v| *v = complex_input(d, pr, rg));
                cx.charge_mem_bytes(
                    std::mem::size_of_val(input.local()) as f64,
                );
            });
            // Corner turn rides the cross-group transfer (parent scope).
            transpose2(cx, &mut work, &input);
            tr.on(cx, "G2", |cx| {
                let (lr, _) = work.local_dims();
                for row in 0..lr {
                    let slice = work.local_row_mut(row);
                    let transformed = fft_any(slice, false);
                    slice.copy_from_slice(&transformed);
                    for z in slice.iter_mut() {
                        *z = z.scale(cfg.gain);
                    }
                }
                cx.charge_flops(fft_any_flops(p) * lr as f64 + scale_flops(p * lr));
            });
            assign2(cx, &mut staged, &work);
            if let Some(total) = tr.on(cx, "G3", |cx| {
                let local_count = staged
                    .local()
                    .iter()
                    .filter(|z| z.abs() >= cfg.threshold)
                    .count() as u64;
                cx.charge_flops(threshold_flops(staged.local().len()));
                let t = cx.allreduce(local_count, |a, b| a + b);
                if cx.id() == 0 {
                    cx.record(SET_DONE);
                }
                t
            }) {
                out.push((d, total));
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_core::{spmd, Machine};

    fn small_cfg() -> RadarConfig {
        RadarConfig { ranges: 32, pulses: 8, datasets: 3, gain: 0.25, threshold: 0.6 }
    }

    #[test]
    fn dp_matches_reference() {
        let cfg = small_cfg();
        for p in [1usize, 2, 4] {
            let rep = spmd(&Machine::real(p), move |cx| radar_dp(cx, &cfg));
            for results in &rep.results {
                for (d, &count) in results.iter().enumerate() {
                    assert_eq!(count, reference_detections(&cfg, d), "p={p} d={d}");
                }
            }
        }
    }

    #[test]
    fn detections_are_nontrivial() {
        // The synthetic stream should produce some but not all detections,
        // otherwise the threshold stage tests nothing.
        let cfg = small_cfg();
        let total: u64 = (0..cfg.datasets).map(|d| reference_detections(&cfg, d)).sum();
        let cells = (cfg.ranges * cfg.pulses * cfg.datasets) as u64;
        assert!(total > 0 && total < cells, "detections {total} of {cells}");
    }

    #[test]
    fn replicated_matches_reference_and_partitions_stream() {
        let cfg = RadarConfig { datasets: 6, ..small_cfg() };
        let rep = spmd(&Machine::real(4), move |cx| radar_replicated(cx, &cfg, 2));
        let mut seen = vec![false; cfg.datasets];
        for results in &rep.results {
            for &(d, count) in results {
                assert_eq!(count, reference_detections(&cfg, d), "d={d}");
                seen[d] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Modules got alternating datasets.
        let sets0: Vec<usize> = rep.results[0].iter().map(|(d, _)| *d).collect();
        assert_eq!(sets0, vec![0, 2, 4]);
    }

    #[test]
    fn pipeline_matches_reference() {
        let cfg = RadarConfig { datasets: 4, ..small_cfg() };
        let sets: Vec<usize> = (0..cfg.datasets).collect();
        let rep = spmd(&Machine::real(5), move |cx| radar_pipeline(cx, &cfg, [1, 3, 1], &sets));
        // G3 member (phys 4) holds the results.
        let results = &rep.results[4];
        assert_eq!(results.len(), cfg.datasets);
        for &(d, count) in results {
            assert_eq!(count, reference_detections(&cfg, d), "d={d}");
        }
        assert!(rep.results[..4].iter().all(|r| r.is_empty()));
    }

    #[test]
    fn replicated_pipeline_hybrid_matches_reference() {
        // Replication combined with pipelining: 2 modules x [1, 2, 1].
        let cfg = RadarConfig { datasets: 4, ..small_cfg() };
        let rep = spmd(&Machine::real(8), move |cx| {
            radar_replicated_pipeline(cx, &cfg, 2, [1, 2, 1])
        });
        let mut seen = vec![false; cfg.datasets];
        for results in &rep.results {
            for &(d, count) in results {
                assert_eq!(count, reference_detections(&cfg, d), "d={d}");
                seen[d] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn more_processors_than_rows_still_correct() {
        // 8-pulse input rows over 12 processors: several own nothing in
        // one of the two layouts; the corner turn must still be exact.
        let cfg = RadarConfig { ranges: 16, pulses: 8, datasets: 2, gain: 0.5, threshold: 0.5 };
        let rep = spmd(&Machine::real(12), move |cx| radar_dp(cx, &cfg));
        for results in &rep.results {
            for (d, &count) in results.iter().enumerate() {
                assert_eq!(count, reference_detections(&cfg, d));
            }
        }
    }
}

//! Latency-optimal mapping of a chain of data-parallel tasks under a
//! throughput constraint — the algorithms of the paper's references [21]
//! (Subhlok & Vondran, PPoPP '95) and [22] (SPAA '96), which the paper
//! uses ("along with the use of mapping algorithms presented in
//! [21, 22], allows us to automatically determine the best mapping of a
//! program for different performance goals", §5.1 / Figure 5).
//!
//! The search space:
//!
//! * the chain may be **replicated** into `r` identical modules
//!   (datasets dealt round-robin, multiplying throughput by `r`);
//! * within a module, the chain is split into contiguous **segments**;
//!   each segment is a fused data-parallel task on its own processor
//!   subset, and segments form a pipeline;
//! * a segment's *period* is its compute time plus its share of the
//!   boundary transfer costs; module throughput is `1 / max period`,
//!   module latency is the sum of periods along the chain.
//!
//! Boundary transfers are priced with per-message software overheads —
//! the dominant cost of HPF-level redistribution on the paper's machine —
//! so the model distinguishes **all-to-all** boundaries (distribution
//! changes: every sender talks to every receiver) from **aligned** ones,
//! and boundaries whose redistribution is required *even inside a fused
//! segment* (FFT-Hist's cffts→rffts transpose) from ones fusion
//! eliminates (rffts→hist, same distribution).
//!
//! With the small chains of real programs (3–5 stages) and ≤ 64
//! processors, exact dynamic programming over (first stage, processors
//! remaining, upstream segment width) is instantaneous.

use serde::{Deserialize, Serialize};

use crate::profile::StageProfile;

/// Interconnect parameters used to price the data transfer between
/// adjacent pipeline segments.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NetParams {
    /// Seconds per byte (inverse bandwidth).
    pub sec_per_byte: f64,
    /// Per-message CPU overhead on each side (the HPF runtime's
    /// pack/schedule/unpack cost).
    pub o_msg: f64,
    /// Wire latency per transfer in seconds.
    pub latency: f64,
}

impl NetParams {
    /// Defaults matching `fx_runtime::MachineModel::paragon()`.
    pub fn paragon() -> Self {
        NetParams { sec_per_byte: 1.0 / 30e6, o_msg: 300e-6, latency: 60e-6 }
    }

    /// Free communication (tests).
    pub fn zero() -> Self {
        NetParams { sec_per_byte: 0.0, o_msg: 0.0, latency: 0.0 }
    }
}

/// One stage boundary of the chain.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Boundary {
    /// Bytes crossing per data set.
    pub bytes: f64,
    /// Distribution changes across this boundary, so every sender
    /// exchanges messages with every receiver (e.g. a transpose).
    pub all_to_all: bool,
    /// Fusing the two stages onto one processor set eliminates the
    /// transfer (same distribution on both sides). When false, the
    /// redistribution happens even inside a fused segment.
    pub fused_is_free: bool,
}

/// The chain of tasks to map: per-stage cost profiles plus a boundary
/// descriptor between each adjacent pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChainModel {
    /// Per-stage cost profiles, in chain order.
    pub stages: Vec<StageProfile>,
    /// Boundary descriptors between adjacent stages.
    pub boundaries: Vec<Boundary>,
    /// Interconnect pricing.
    pub net: NetParams,
}

impl ChainModel {
    /// Build a chain model; validates one boundary per adjacent pair.
    pub fn new(stages: Vec<StageProfile>, boundaries: Vec<Boundary>, net: NetParams) -> Self {
        assert!(!stages.is_empty(), "chain needs at least one stage");
        assert_eq!(boundaries.len(), stages.len() - 1, "one boundary per adjacent pair");
        ChainModel { stages, boundaries, net }
    }

    /// Per-processor cost on the *sending* side of boundary `b` when the
    /// upstream runs on `q_src` and the downstream on `q_dst` processors.
    fn send_side(&self, b: usize, q_src: usize, q_dst: usize) -> f64 {
        let bd = &self.boundaries[b];
        let msgs = if bd.all_to_all { q_dst } else { q_dst.div_ceil(q_src).max(1) };
        msgs as f64 * self.net.o_msg + bd.bytes / q_src as f64 * self.net.sec_per_byte
    }

    /// Per-processor cost on the *receiving* side of boundary `b`.
    fn recv_side(&self, b: usize, q_src: usize, q_dst: usize) -> f64 {
        let bd = &self.boundaries[b];
        let msgs = if bd.all_to_all { q_src } else { q_src.div_ceil(q_dst).max(1) };
        msgs as f64 * self.net.o_msg + bd.bytes / q_dst as f64 * self.net.sec_per_byte
    }

    /// Cost of boundary `b` performed *inside* a fused segment of `q`
    /// processors (zero when fusion eliminates the redistribution).
    fn internal_cost(&self, b: usize, q: usize) -> f64 {
        if self.boundaries[b].fused_is_free {
            0.0
        } else {
            self.send_side(b, q, q) + self.recv_side(b, q, q) + self.net.latency
        }
    }

    /// Period of the fused segment covering stages `i..=j` on `q`
    /// processors, given the upstream segment width (`None` for the
    /// first segment): inbound receive + compute + internal
    /// redistributions + outbound send. The outbound send side is
    /// charged with the downstream width `q_next` when known.
    fn segment_period(
        &self,
        i: usize,
        j: usize,
        q: usize,
        q_prev: Option<usize>,
        q_next: Option<usize>,
    ) -> f64 {
        let mut t = 0.0;
        if let (true, Some(qp)) = (i > 0, q_prev) {
            t += self.recv_side(i - 1, qp, q) + self.net.latency;
        }
        for k in i..=j {
            t += self.stages[k].time(q);
            if k < j {
                t += self.internal_cost(k, q);
            }
        }
        if let (true, Some(qn)) = (j + 1 < self.stages.len(), q_next) {
            t += self.send_side(j, q, qn);
        }
        t
    }
}

/// One pipeline segment of a mapped module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// First stage index of the segment.
    pub first: usize,
    /// Last stage index (inclusive).
    pub last: usize,
    /// Processors assigned.
    pub procs: usize,
}

/// A complete mapping: `modules` identical replicas, each pipelined into
/// `segments` (covering the whole chain, in order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    /// Replication factor (identical modules, round-robin data sets).
    pub modules: usize,
    /// Pipeline segments within one module, covering the chain in order.
    pub segments: Vec<Segment>,
}

impl Mapping {
    /// Total processors used.
    pub fn procs_used(&self) -> usize {
        self.modules * self.segments.iter().map(|s| s.procs).sum::<usize>()
    }

    /// True when this is the plain data-parallel mapping.
    pub fn is_pure_data_parallel(&self) -> bool {
        self.modules == 1 && self.segments.len() == 1
    }

    /// Human-readable rendering, e.g. `2x [cffts+rffts:24 | hist:8]`.
    pub fn render(&self, model: &ChainModel) -> String {
        let segs: Vec<String> = self
            .segments
            .iter()
            .map(|s| {
                let names: Vec<&str> =
                    (s.first..=s.last).map(|k| model.stages[k].name.as_str()).collect();
                format!("{}:{}", names.join("+"), s.procs)
            })
            .collect();
        format!("{}x [{}]", self.modules, segs.join(" | "))
    }
}

/// A mapping together with its predicted performance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Evaluated {
    /// The mapping evaluated.
    pub mapping: Mapping,
    /// Predicted per-dataset latency in seconds.
    pub latency: f64,
    /// Predicted steady-state throughput in datasets/second.
    pub throughput: f64,
}

/// Evaluate a specific mapping against the model.
pub fn evaluate(model: &ChainModel, mapping: &Mapping) -> Evaluated {
    assert!(mapping.modules >= 1);
    let m = model.stages.len();
    let widths: Vec<usize> = mapping.segments.iter().map(|s| s.procs).collect();
    let mut latency = 0.0;
    let mut worst_period = 0.0f64;
    let mut next = 0;
    for (si, seg) in mapping.segments.iter().enumerate() {
        assert_eq!(seg.first, next, "segments must cover the chain in order");
        assert!(seg.procs >= 1);
        let q_prev = (si > 0).then(|| widths[si - 1]);
        let q_next = (si + 1 < widths.len()).then(|| widths[si + 1]);
        let t = model.segment_period(seg.first, seg.last, seg.procs, q_prev, q_next);
        latency += t;
        worst_period = worst_period.max(t);
        next = seg.last + 1;
    }
    assert_eq!(next, m, "segments must cover every stage");
    Evaluated {
        mapping: mapping.clone(),
        latency,
        throughput: mapping.modules as f64 / worst_period,
    }
}

/// Find the latency-optimal mapping of the chain on `total_procs`
/// processors subject to `throughput >= min_throughput` (if given).
/// Returns `None` when no mapping meets the constraint.
pub fn best_mapping(
    model: &ChainModel,
    total_procs: usize,
    min_throughput: Option<f64>,
) -> Option<Evaluated> {
    assert!(total_procs >= 1);
    let mut best: Option<Evaluated> = None;
    for modules in 1..=total_procs {
        if !total_procs.is_multiple_of(modules) {
            continue;
        }
        let per_module = total_procs / modules;
        let per_module_rate = min_throughput.map(|r| r / modules as f64);
        for segments in enumerate_segmentations(model, per_module, per_module_rate) {
            let cand = evaluate(model, &Mapping { modules, segments });
            let feasible = min_throughput.is_none_or(|r| cand.throughput >= r * (1.0 - 1e-9));
            if !feasible {
                continue;
            }
            let better = match &best {
                None => true,
                Some(b) => {
                    cand.latency < b.latency * (1.0 - 1e-12)
                        || ((cand.latency - b.latency).abs() <= 1e-12 * b.latency
                            && cand.mapping.procs_used() < b.mapping.procs_used())
                }
            };
            if better {
                best = Some(cand);
            }
        }
    }
    best
}

/// The best-throughput mapping regardless of latency (used by harnesses
/// when a requested constraint is infeasible, to report the ceiling).
pub fn max_throughput_mapping(model: &ChainModel, total_procs: usize) -> Evaluated {
    let mut best: Option<Evaluated> = None;
    for modules in 1..=total_procs {
        if !total_procs.is_multiple_of(modules) {
            continue;
        }
        for segments in enumerate_segmentations(model, total_procs / modules, None) {
            let cand = evaluate(model, &Mapping { modules, segments });
            if best.as_ref().is_none_or(|b| cand.throughput > b.throughput) {
                best = Some(cand);
            }
        }
    }
    best.expect("at least the trivial mapping exists")
}

/// Enumerate candidate segmentations of the whole chain on `procs`
/// processors: every split into contiguous segments, with processor
/// counts chosen by a per-split inner optimization (small chains make
/// exhaustive splits cheap; processor allocation per split is chosen by
/// local search over balanced allocations).
fn enumerate_segmentations(
    model: &ChainModel,
    procs: usize,
    rate: Option<f64>,
) -> Vec<Vec<Segment>> {
    let m = model.stages.len();
    let mut out = Vec::new();
    // All 2^(m-1) split patterns (m ≤ 5 in practice).
    for pattern in 0..(1u32 << (m - 1)) {
        let mut bounds = vec![0usize];
        for k in 0..m - 1 {
            if pattern & (1 << k) != 0 {
                bounds.push(k + 1);
            }
        }
        bounds.push(m);
        let nseg = bounds.len() - 1;
        if nseg > procs {
            continue;
        }
        if let Some(segs) = allocate_procs(model, &bounds, procs, rate) {
            out.push(segs);
        }
    }
    out
}

/// Choose processor counts for a fixed segmentation: exhaustive for ≤ 2
/// segments, otherwise greedy rebalancing from an even split, minimizing
/// the worst period then total latency. Respects `rate` when given
/// (returns the best attempt; the caller re-checks feasibility).
fn allocate_procs(
    model: &ChainModel,
    bounds: &[usize],
    procs: usize,
    _rate: Option<f64>,
) -> Option<Vec<Segment>> {
    let nseg = bounds.len() - 1;
    let seg_at = |alloc: &[usize]| -> Vec<Segment> {
        (0..nseg)
            .map(|s| Segment { first: bounds[s], last: bounds[s + 1] - 1, procs: alloc[s] })
            .collect()
    };
    if nseg == 1 {
        return Some(seg_at(&[procs]));
    }
    // Start from an even split and hill-climb by moving one processor at
    // a time from the least-loaded to the most-loaded segment.
    let mut alloc: Vec<usize> = vec![procs / nseg; nseg];
    for a in alloc.iter_mut().take(procs % nseg) {
        *a += 1;
    }
    if alloc.contains(&0) {
        return None;
    }
    let score = |alloc: &[usize]| -> (f64, f64) {
        let ev = evaluate(model, &Mapping { modules: 1, segments: seg_at(alloc) });
        (1.0 / ev.throughput, ev.latency)
    };
    let mut cur = score(&alloc);
    loop {
        let mut improved = false;
        for from in 0..nseg {
            for to in 0..nseg {
                if to == from || alloc[from] <= 1 {
                    continue;
                }
                alloc[from] -= 1;
                alloc[to] += 1;
                let s = score(&alloc);
                if s < cur {
                    cur = s;
                    improved = true;
                } else {
                    alloc[from] += 1;
                    alloc[to] -= 1;
                }
            }
        }
        if !improved {
            break;
        }
    }
    Some(seg_at(&alloc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn free_boundaries(n: usize) -> Vec<Boundary> {
        vec![Boundary { bytes: 0.0, all_to_all: false, fused_is_free: true }; n]
    }

    fn ideal_chain(works: &[f64], max_p: usize) -> ChainModel {
        let stages = works
            .iter()
            .enumerate()
            .map(|(i, &w)| StageProfile::ideal(format!("s{i}"), w, max_p))
            .collect();
        ChainModel::new(stages, free_boundaries(works.len() - 1), NetParams::zero())
    }

    #[test]
    fn unconstrained_ideal_chain_is_pure_data_parallel() {
        let model = ideal_chain(&[8.0, 4.0, 2.0], 64);
        let best = best_mapping(&model, 16, None).unwrap();
        assert!(best.mapping.is_pure_data_parallel(), "{:?}", best.mapping);
        assert!((best.latency - 14.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_constraint_forces_replication_on_nonscaling_stages() {
        let flat = StageProfile::from_samples("flat", vec![(1, 2.0), (2, 1.0), (64, 1.0)]);
        let model = ChainModel::new(vec![flat], vec![], NetParams::zero());
        let dp = best_mapping(&model, 8, None).unwrap();
        assert_eq!(dp.mapping.modules, 1);
        assert!((dp.throughput - 1.0).abs() < 1e-9);
        let constrained = best_mapping(&model, 8, Some(3.5)).unwrap();
        assert_eq!(constrained.mapping.modules, 4);
        assert!((constrained.throughput - 4.0).abs() < 1e-9);
        assert!((constrained.latency - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_constraint_returns_none_and_max_throughput_reports_ceiling() {
        let flat = StageProfile::from_samples("flat", vec![(1, 1.0), (64, 1.0)]);
        let model = ChainModel::new(vec![flat], vec![], NetParams::zero());
        assert!(best_mapping(&model, 4, Some(100.0)).is_none());
        let ceiling = max_throughput_mapping(&model, 4);
        assert!((ceiling.throughput - 4.0).abs() < 1e-9);
    }

    #[test]
    fn pipeline_beats_fusion_when_stages_do_not_scale() {
        let f1 = StageProfile::from_samples("a", vec![(1, 1.0), (64, 1.0)]);
        let f2 = StageProfile::from_samples("b", vec![(1, 1.0), (64, 1.0)]);
        let model = ChainModel::new(vec![f1, f2], free_boundaries(1), NetParams::zero());
        let best = best_mapping(&model, 2, Some(0.9)).unwrap();
        assert_eq!(best.mapping.segments.len(), 2, "{:?}", best.mapping);
        assert!((best.throughput - 1.0).abs() < 1e-9);
    }

    #[test]
    fn per_message_overheads_penalize_wide_all_to_all() {
        // An always-on all-to-all boundary with per-message overheads
        // makes the fused period grow with q: replication must win for
        // high throughput even though stages scale perfectly.
        let model = ChainModel::new(
            vec![StageProfile::ideal("a", 1.0, 64), StageProfile::ideal("b", 1.0, 64)],
            vec![Boundary { bytes: 1e6, all_to_all: true, fused_is_free: false }],
            NetParams { sec_per_byte: 1e-8, o_msg: 1e-3, latency: 1e-4 },
        );
        let dp = evaluate(
            &model,
            &Mapping { modules: 1, segments: vec![Segment { first: 0, last: 1, procs: 64 }] },
        );
        let repl = evaluate(
            &model,
            &Mapping { modules: 8, segments: vec![Segment { first: 0, last: 1, procs: 8 }] },
        );
        assert!(repl.throughput > dp.throughput, "repl {repl:?} dp {dp:?}");
        let best = best_mapping(&model, 64, Some(dp.throughput * 2.0)).unwrap();
        // Meeting twice the fused throughput requires task parallelism of
        // some form — replication or pipelining, never the fused mapping.
        assert!(!best.mapping.is_pure_data_parallel(), "{:?}", best.mapping);
        assert!(best.throughput >= dp.throughput * 2.0);
    }

    #[test]
    fn fused_is_free_boundaries_cost_nothing_inside_a_segment() {
        let model = ChainModel::new(
            vec![StageProfile::ideal("a", 4.0, 16), StageProfile::ideal("b", 4.0, 16)],
            vec![Boundary { bytes: 1e9, all_to_all: false, fused_is_free: true }],
            NetParams { sec_per_byte: 1e-8, o_msg: 1e-4, latency: 1e-4 },
        );
        let best = best_mapping(&model, 8, None).unwrap();
        assert!(best.mapping.is_pure_data_parallel(), "{:?}", best.mapping);
        assert!((best.latency - 1.0).abs() < 1e-9);
    }

    #[test]
    fn evaluate_checks_coverage() {
        let model = ideal_chain(&[1.0, 1.0], 4);
        let m = Mapping { modules: 1, segments: vec![Segment { first: 0, last: 1, procs: 2 }] };
        let e = evaluate(&model, &m);
        assert!((e.latency - 1.0).abs() < 1e-9);
        assert!((e.throughput - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cover every stage")]
    fn evaluate_rejects_partial_mappings() {
        let model = ideal_chain(&[1.0, 1.0], 4);
        let m = Mapping { modules: 1, segments: vec![Segment { first: 0, last: 0, procs: 2 }] };
        evaluate(&model, &m);
    }

    #[test]
    fn render_is_readable() {
        let model = ideal_chain(&[1.0, 1.0, 1.0], 8);
        let m = Mapping {
            modules: 2,
            segments: vec![
                Segment { first: 0, last: 1, procs: 3 },
                Segment { first: 2, last: 2, procs: 1 },
            ],
        };
        assert_eq!(m.render(&model), "2x [s0+s1:3 | s2:1]");
        assert_eq!(m.procs_used(), 8);
    }

    #[test]
    fn evaluate_matches_hand_computation_with_boundaries() {
        // Two segments (q=2, q=2); aligned boundary 1 MB; o = 1 ms,
        // g = 10 ns/B, L = 0.1 ms. Stage works 2 s and 1 s.
        let model = ChainModel::new(
            vec![StageProfile::ideal("a", 2.0, 8), StageProfile::ideal("b", 1.0, 8)],
            vec![Boundary { bytes: 1e6, all_to_all: false, fused_is_free: true }],
            NetParams { sec_per_byte: 1e-8, o_msg: 1e-3, latency: 1e-4 },
        );
        let m = Mapping {
            modules: 1,
            segments: vec![
                Segment { first: 0, last: 0, procs: 2 },
                Segment { first: 1, last: 1, procs: 2 },
            ],
        };
        let e = evaluate(&model, &m);
        // Segment a: 1.0 compute + send side (1 msg * 1 ms + 0.5 MB * 10 ns = 5 ms) = 1.006.
        // Segment b: recv side (1 ms + 5 ms) + latency 0.1 ms + 0.5 compute = 0.5061.
        assert!((e.latency - (1.006 + 0.5061)).abs() < 1e-9, "{}", e.latency);
        assert!((e.throughput - 1.0 / 1.006).abs() < 1e-6);
    }
}

//! Stage cost profiles: measured execution times of one data-parallel
//! task as a function of processor count.
//!
//! The automatic mapping work the paper builds on (Subhlok & Vondran,
//! PPoPP '95 and SPAA '96) drives its optimizer with per-task cost
//! functions `T_i(p)`. Profiles here are tables of measured samples
//! (typically at powers of two) with log-log interpolation in between —
//! execution time curves of data-parallel kernels are near power laws in
//! `p` until they flatten out.

use serde::{Deserialize, Serialize};

/// Measured cost profile of one pipeline stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageProfile {
    /// Stage name (for printed mappings).
    pub name: String,
    /// `(processors, seconds)` samples, strictly increasing in processors.
    pub samples: Vec<(usize, f64)>,
}

impl StageProfile {
    /// Build from samples; they are sorted and validated.
    pub fn from_samples(name: impl Into<String>, mut samples: Vec<(usize, f64)>) -> Self {
        assert!(!samples.is_empty(), "a profile needs at least one sample");
        samples.sort_by_key(|&(p, _)| p);
        assert!(
            samples.windows(2).all(|w| w[0].0 < w[1].0),
            "duplicate processor counts in profile"
        );
        assert!(
            samples.iter().all(|&(p, t)| p >= 1 && t > 0.0),
            "samples must have p >= 1 and positive times"
        );
        StageProfile { name: name.into(), samples }
    }

    /// An ideal `T(p) = work / p` profile (useful in tests and as a
    /// stand-in before measurement).
    pub fn ideal(name: impl Into<String>, work: f64, max_p: usize) -> Self {
        let samples = (0..)
            .map(|k| 1usize << k)
            .take_while(|&p| p <= max_p)
            .map(|p| (p, work / p as f64))
            .collect();
        StageProfile::from_samples(name, samples)
    }

    /// Execution time on `p` processors: exact at samples, log-log
    /// interpolated between them, log-log **extrapolated** below the
    /// smallest sample (from the slope of the first segment), clamped to
    /// the last sample above the largest.
    ///
    /// Clamping below used to return the smallest sample's time — a
    /// profile measured at p >= 2 then reported the p=2 cost for a serial
    /// placement, underestimating serial stages and skewing the optimizer
    /// toward giving them too few processors. Extrapolation assumes the
    /// power-law shape continues; measure a p=1 sample when the exact
    /// serial cost matters. Above the largest sample we still clamp:
    /// kernels flatten out past their measured range, and optimistic
    /// extrapolation there would *over*-reward wide mappings.
    pub fn time(&self, p: usize) -> f64 {
        assert!(p >= 1, "need at least one processor");
        let s = &self.samples;
        if p == s[0].0 || (p < s[0].0 && s.len() == 1) {
            return s[0].1;
        }
        if p < s[0].0 {
            return Self::loglog(p, s[0], s[1]);
        }
        if p >= s[s.len() - 1].0 {
            return s[s.len() - 1].1;
        }
        let i = s.partition_point(|&(q, _)| q <= p) - 1;
        if p == s[i].0 {
            return s[i].1;
        }
        Self::loglog(p, s[i], s[i + 1])
    }

    /// Evaluate the log-log line through `(p0, t0)` and `(p1, t1)` at `p`.
    fn loglog(p: usize, (p0, t0): (usize, f64), (p1, t1): (usize, f64)) -> f64 {
        let f = ((p as f64).ln() - (p0 as f64).ln()) / ((p1 as f64).ln() - (p0 as f64).ln());
        (t0.ln() + f * (t1.ln() - t0.ln())).exp()
    }
}

/// Accumulator turning measured `(stage, processors, seconds)` samples
/// into [`StageProfile`]s — the ingestion point between a measurement
/// harness (e.g. `fx-bench` harvesting per-stage times from the runtime's
/// span profiler at several subgroup sizes) and the chain optimizer.
///
/// Stages keep their first-insertion order, which is the pipeline order
/// when the harness probes stages in sequence.
#[derive(Debug, Default, Clone)]
pub struct ProfileTable {
    stages: Vec<(String, Vec<(usize, f64)>)>,
}

impl ProfileTable {
    /// An empty table.
    pub fn new() -> Self {
        ProfileTable::default()
    }

    /// Record one measurement of `stage` on `p` processors. Re-measuring
    /// the same `(stage, p)` replaces the earlier sample.
    pub fn add(&mut self, stage: &str, p: usize, seconds: f64) {
        assert!(p >= 1 && seconds > 0.0, "need p >= 1 and a positive time");
        let entry = match self.stages.iter_mut().find(|(n, _)| n == stage) {
            Some((_, samples)) => samples,
            None => {
                self.stages.push((stage.to_string(), Vec::new()));
                &mut self.stages.last_mut().unwrap().1
            }
        };
        match entry.iter_mut().find(|(q, _)| *q == p) {
            Some(slot) => slot.1 = seconds,
            None => entry.push((p, seconds)),
        }
    }

    /// The profile of one stage, if any sample was recorded for it.
    pub fn profile(&self, stage: &str) -> Option<StageProfile> {
        self.stages
            .iter()
            .find(|(n, _)| n == stage)
            .map(|(n, samples)| StageProfile::from_samples(n.clone(), samples.clone()))
    }

    /// All profiles in first-insertion (pipeline) order — feed directly to
    /// [`crate::ChainModel`].
    pub fn into_profiles(self) -> Vec<StageProfile> {
        self.stages
            .into_iter()
            .map(|(n, samples)| StageProfile::from_samples(n, samples))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_at_samples() {
        let p = StageProfile::from_samples("s", vec![(1, 8.0), (2, 5.0), (8, 2.0)]);
        assert_eq!(p.time(1), 8.0);
        assert_eq!(p.time(2), 5.0);
        assert_eq!(p.time(8), 2.0);
    }

    #[test]
    fn extrapolates_below_smallest_sample() {
        // Regression: time(1) on a profile measured at p >= 2 used to
        // return the p=2 cost (5.0), underestimating serial stages.
        let p = StageProfile::from_samples("s", vec![(2, 5.0), (8, 2.0)]);
        // Slope of the first segment: ln(2/5)/ln(8/2); extended to p=1.
        let alpha = (2.0f64 / 5.0).ln() / (8.0f64 / 2.0).ln();
        let expect = 5.0 * (0.5f64).powf(alpha);
        assert!((p.time(1) - expect).abs() < 1e-12, "{} vs {expect}", p.time(1));
        assert!(p.time(1) > 5.0, "serial cost must exceed the p=2 cost");
        // Above the largest sample we still clamp (curves flatten out).
        assert_eq!(p.time(64), 2.0);
        // Sample boundaries stay exact.
        assert_eq!(p.time(2), 5.0);
        assert_eq!(p.time(8), 2.0);
    }

    #[test]
    fn single_sample_profiles_clamp_everywhere() {
        let p = StageProfile::from_samples("s", vec![(4, 3.0)]);
        assert_eq!(p.time(1), 3.0);
        assert_eq!(p.time(4), 3.0);
        assert_eq!(p.time(16), 3.0);
    }

    #[test]
    fn extrapolation_matches_ideal_power_law() {
        // An ideal T(p) = 16/p profile sampled only at {2, 4, 8} must
        // extrapolate to exactly 16 at p=1.
        let p = StageProfile::from_samples("s", vec![(2, 8.0), (4, 4.0), (8, 2.0)]);
        assert!((p.time(1) - 16.0).abs() < 1e-9, "got {}", p.time(1));
    }

    #[test]
    fn interpolation_is_monotone_for_decreasing_profiles() {
        let p = StageProfile::from_samples("s", vec![(1, 8.0), (4, 3.0), (16, 1.5)]);
        let mut last = f64::INFINITY;
        for q in 1..=16 {
            let t = p.time(q);
            assert!(t <= last + 1e-12, "time increased at p={q}: {t} > {last}");
            last = t;
        }
    }

    #[test]
    fn ideal_profile_halves_per_doubling() {
        let p = StageProfile::ideal("s", 16.0, 8);
        assert_eq!(p.time(1), 16.0);
        assert_eq!(p.time(2), 8.0);
        assert_eq!(p.time(8), 2.0);
        // Log-log interpolation of an ideal profile is exact.
        assert!((p.time(3) - 16.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "duplicate processor counts")]
    fn duplicate_samples_rejected() {
        StageProfile::from_samples("s", vec![(2, 5.0), (2, 4.0)]);
    }

    #[test]
    fn profile_table_accumulates_in_pipeline_order() {
        let mut t = ProfileTable::new();
        t.add("fft", 1, 8.0);
        t.add("hist", 1, 4.0);
        t.add("fft", 4, 2.0);
        t.add("hist", 4, 1.5);
        t.add("fft", 4, 2.5); // re-measurement replaces
        let profiles = t.clone().into_profiles();
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].name, "fft");
        assert_eq!(profiles[1].name, "hist");
        assert_eq!(profiles[0].time(4), 2.5);
        assert_eq!(t.profile("hist").unwrap().time(1), 4.0);
        assert!(t.profile("missing").is_none());
    }
}

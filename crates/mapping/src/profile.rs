//! Stage cost profiles: measured execution times of one data-parallel
//! task as a function of processor count.
//!
//! The automatic mapping work the paper builds on (Subhlok & Vondran,
//! PPoPP '95 and SPAA '96) drives its optimizer with per-task cost
//! functions `T_i(p)`. Profiles here are tables of measured samples
//! (typically at powers of two) with log-log interpolation in between —
//! execution time curves of data-parallel kernels are near power laws in
//! `p` until they flatten out.

use serde::{Deserialize, Serialize};

/// Measured cost profile of one pipeline stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageProfile {
    /// Stage name (for printed mappings).
    pub name: String,
    /// `(processors, seconds)` samples, strictly increasing in processors.
    pub samples: Vec<(usize, f64)>,
}

impl StageProfile {
    /// Build from samples; they are sorted and validated.
    pub fn from_samples(name: impl Into<String>, mut samples: Vec<(usize, f64)>) -> Self {
        assert!(!samples.is_empty(), "a profile needs at least one sample");
        samples.sort_by_key(|&(p, _)| p);
        assert!(
            samples.windows(2).all(|w| w[0].0 < w[1].0),
            "duplicate processor counts in profile"
        );
        assert!(
            samples.iter().all(|&(p, t)| p >= 1 && t > 0.0),
            "samples must have p >= 1 and positive times"
        );
        StageProfile { name: name.into(), samples }
    }

    /// An ideal `T(p) = work / p` profile (useful in tests and as a
    /// stand-in before measurement).
    pub fn ideal(name: impl Into<String>, work: f64, max_p: usize) -> Self {
        let samples = (0..)
            .map(|k| 1usize << k)
            .take_while(|&p| p <= max_p)
            .map(|p| (p, work / p as f64))
            .collect();
        StageProfile::from_samples(name, samples)
    }

    /// Execution time on `p` processors: exact at samples, log-log
    /// interpolated between them, clamped to the end samples outside.
    pub fn time(&self, p: usize) -> f64 {
        assert!(p >= 1, "need at least one processor");
        let s = &self.samples;
        if p <= s[0].0 {
            return s[0].1;
        }
        if p >= s[s.len() - 1].0 {
            return s[s.len() - 1].1;
        }
        let i = s.partition_point(|&(q, _)| q <= p) - 1;
        let (p0, t0) = s[i];
        let (p1, t1) = s[i + 1];
        if p == p0 {
            return t0;
        }
        let f = ((p as f64).ln() - (p0 as f64).ln()) / ((p1 as f64).ln() - (p0 as f64).ln());
        (t0.ln() + f * (t1.ln() - t0.ln())).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_at_samples() {
        let p = StageProfile::from_samples("s", vec![(1, 8.0), (2, 5.0), (8, 2.0)]);
        assert_eq!(p.time(1), 8.0);
        assert_eq!(p.time(2), 5.0);
        assert_eq!(p.time(8), 2.0);
    }

    #[test]
    fn clamps_outside_range() {
        let p = StageProfile::from_samples("s", vec![(2, 5.0), (8, 2.0)]);
        assert_eq!(p.time(1), 5.0);
        assert_eq!(p.time(64), 2.0);
    }

    #[test]
    fn interpolation_is_monotone_for_decreasing_profiles() {
        let p = StageProfile::from_samples("s", vec![(1, 8.0), (4, 3.0), (16, 1.5)]);
        let mut last = f64::INFINITY;
        for q in 1..=16 {
            let t = p.time(q);
            assert!(t <= last + 1e-12, "time increased at p={q}: {t} > {last}");
            last = t;
        }
    }

    #[test]
    fn ideal_profile_halves_per_doubling() {
        let p = StageProfile::ideal("s", 16.0, 8);
        assert_eq!(p.time(1), 16.0);
        assert_eq!(p.time(2), 8.0);
        assert_eq!(p.time(8), 2.0);
        // Log-log interpolation of an ideal profile is exact.
        assert!((p.time(3) - 16.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "duplicate processor counts")]
    fn duplicate_samples_rejected() {
        StageProfile::from_samples("s", vec![(2, 5.0), (2, 4.0)]);
    }
}

//! The optimal latency-throughput tradeoff curve of a pipeline
//! (Subhlok & Vondran, SPAA '96 — the paper's reference [22]).
//!
//! Figure 5's three mappings are three points of this curve; the
//! frontier makes the whole trade explicit: each point is a mapping no
//! other mapping dominates (strictly better in one of
//! {throughput, latency} and at least as good in the other). The
//! `tradeoff` harness prints it for the FFT-Hist chain.

use crate::chain::{evaluate, ChainModel, Evaluated, Mapping, Segment};

/// All candidate mappings considered by the optimizer: every replication
/// factor dividing the machine × every contiguous segmentation, with a
/// spread of processor allocations per segmentation.
fn candidates(model: &ChainModel, total_procs: usize) -> Vec<Evaluated> {
    let m = model.stages.len();
    let mut out = Vec::new();
    for modules in 1..=total_procs {
        if !total_procs.is_multiple_of(modules) {
            continue;
        }
        let per_module = total_procs / modules;
        for pattern in 0..(1u32 << (m - 1)) {
            let mut bounds = vec![0usize];
            for k in 0..m - 1 {
                if pattern & (1 << k) != 0 {
                    bounds.push(k + 1);
                }
            }
            bounds.push(m);
            let nseg = bounds.len() - 1;
            if nseg > per_module {
                continue;
            }
            for alloc in allocations(per_module, nseg) {
                let segments: Vec<Segment> = (0..nseg)
                    .map(|s| Segment {
                        first: bounds[s],
                        last: bounds[s + 1] - 1,
                        procs: alloc[s],
                    })
                    .collect();
                out.push(evaluate(model, &Mapping { modules, segments }));
            }
        }
    }
    out
}

/// A spread of processor allocations of `procs` over `nseg` segments:
/// exhaustive for small cases, otherwise the even split plus its
/// single-transfer perturbations (the hill-climb neighbourhood).
fn allocations(procs: usize, nseg: usize) -> Vec<Vec<usize>> {
    if nseg == 1 {
        return vec![vec![procs]];
    }
    // Exhaustive compositions when the space is tiny.
    let space: usize = num_compositions(procs, nseg);
    if space <= 4096 {
        let mut out = Vec::new();
        let mut cur = vec![1usize; nseg];
        compose(procs - nseg, 0, &mut cur, &mut out);
        return out;
    }
    // Otherwise: even split and its neighbours.
    let mut base: Vec<usize> = vec![procs / nseg; nseg];
    for b in base.iter_mut().take(procs % nseg) {
        *b += 1;
    }
    let mut out = vec![base.clone()];
    for from in 0..nseg {
        for to in 0..nseg {
            if from == to || base[from] <= 1 {
                continue;
            }
            let mut v = base.clone();
            v[from] -= 1;
            v[to] += 1;
            out.push(v);
        }
    }
    out
}

/// C(procs-1, nseg-1): how many ways `procs` processors split into `nseg`
/// positive parts. Saturates at `usize::MAX` instead of overflowing, so
/// the exhaustive/hill-climb threshold test in [`allocations`] is exact
/// for any space that is actually small. (A previous version saturated
/// the multiply *before* the divide, which could truncate a huge space to
/// a small wrong count and silently switch the optimizer to exhaustive
/// enumeration of an astronomically large space.)
fn num_compositions(procs: usize, nseg: usize) -> usize {
    let (n, k) = (procs - 1, nseg - 1);
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        // Exact at every step: C(n, i+1) = C(n, i) * (n-i) / (i+1), and
        // the product of consecutive binomials is always divisible.
        acc = acc * (n - i) as u128 / (i as u128 + 1);
        if acc > usize::MAX as u128 {
            return usize::MAX;
        }
    }
    acc as usize
}

fn compose(extra: usize, i: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
    if i == cur.len() - 1 {
        cur[i] += extra;
        out.push(cur.clone());
        cur[i] -= extra;
        return;
    }
    for take in 0..=extra {
        cur[i] += take;
        compose(extra - take, i + 1, cur, out);
        cur[i] -= take;
    }
}

/// The Pareto frontier of (throughput, latency): returned in increasing
/// throughput order; every point is undominated.
pub fn tradeoff_frontier(model: &ChainModel, total_procs: usize) -> Vec<Evaluated> {
    let mut cands = candidates(model, total_procs);
    // Sort by throughput descending, then latency ascending.
    cands.sort_by(|a, b| {
        b.throughput
            .total_cmp(&a.throughput)
            .then(a.latency.total_cmp(&b.latency))
    });
    let mut frontier: Vec<Evaluated> = Vec::new();
    let mut best_latency = f64::INFINITY;
    for c in cands {
        if c.latency < best_latency - 1e-15 {
            best_latency = c.latency;
            frontier.push(c);
        }
    }
    // frontier currently: throughput descending with strictly improving
    // latency → reverse to increasing throughput.
    frontier.reverse();
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{Boundary, NetParams};
    use crate::profile::StageProfile;

    fn test_model() -> ChainModel {
        // One perfectly-scaling stage and one that flattens at 4 procs.
        let a = StageProfile::ideal("a", 8.0, 64);
        let b = StageProfile::from_samples("b", vec![(1, 4.0), (4, 1.0), (64, 1.0)]);
        ChainModel::new(
            vec![a, b],
            vec![Boundary { bytes: 1e5, all_to_all: false, fused_is_free: true }],
            NetParams { sec_per_byte: 1e-8, o_msg: 1e-4, latency: 1e-5 },
        )
    }

    #[test]
    fn frontier_is_sorted_and_undominated() {
        let model = test_model();
        let f = tradeoff_frontier(&model, 16);
        assert!(!f.is_empty());
        for w in f.windows(2) {
            assert!(w[0].throughput < w[1].throughput, "throughput must increase");
            assert!(w[0].latency < w[1].latency, "latency must increase along the frontier");
        }
    }

    #[test]
    fn frontier_contains_the_latency_optimum() {
        let model = test_model();
        let f = tradeoff_frontier(&model, 16);
        let best_lat = f.iter().map(|e| e.latency).fold(f64::INFINITY, f64::min);
        let unconstrained = crate::chain::best_mapping(&model, 16, None).unwrap();
        assert!(
            best_lat <= unconstrained.latency * (1.0 + 1e-9),
            "frontier missed the latency optimum: {best_lat} vs {}",
            unconstrained.latency
        );
    }

    #[test]
    fn frontier_reaches_higher_throughput_than_the_latency_optimum() {
        let model = test_model();
        let f = tradeoff_frontier(&model, 16);
        let lat_opt_thr = f.first().unwrap().throughput;
        let max_thr = f.last().unwrap().throughput;
        assert!(
            max_thr > lat_opt_thr * 1.5,
            "expected a real trade: {lat_opt_thr} → {max_thr}"
        );
    }

    #[test]
    fn compositions_enumerate_exactly() {
        let mut got = Vec::new();
        let mut cur = vec![1usize; 3];
        compose(2, 0, &mut cur, &mut got);
        // 2 extra over 3 slots: C(4,2) = 6 compositions.
        assert_eq!(got.len(), 6);
        assert!(got.iter().all(|v| v.iter().sum::<usize>() == 5));
    }

    #[test]
    fn num_compositions_matches_direct_recursive_count() {
        // Count compositions by direct recursion and compare: the closed
        // form must agree wherever enumeration is feasible, including
        // values straddling the 4096 exhaustive/hill-climb threshold.
        fn count(procs: usize, nseg: usize) -> usize {
            if nseg == 1 {
                return usize::from(procs >= 1);
            }
            (1..=procs.saturating_sub(nseg - 1)).map(|first| count(procs - first, nseg - 1)).sum()
        }
        for procs in 1..=20 {
            for nseg in 1..=procs {
                assert_eq!(
                    num_compositions(procs, nseg),
                    count(procs, nseg),
                    "procs={procs} nseg={nseg}"
                );
            }
        }
        // nseg > procs: no composition into positive parts.
        assert_eq!(num_compositions(3, 5), 0);
        // Near the threshold: C(16,8) = 12870 > 4096 must NOT be
        // truncated into the exhaustive regime.
        assert_eq!(num_compositions(17, 9), 12870);
        assert!(num_compositions(17, 9) > 4096);
        // Huge spaces saturate instead of wrapping.
        assert_eq!(num_compositions(1000, 500), usize::MAX);
    }

    #[test]
    fn single_stage_frontier_is_replication_ladder() {
        let flat = StageProfile::from_samples("s", vec![(1, 1.0), (64, 1.0)]);
        let model = ChainModel::new(vec![flat], vec![], NetParams::zero());
        let f = tradeoff_frontier(&model, 8);
        // Latency is constant (1 s), so only the max-throughput point
        // survives domination: 8 modules.
        assert_eq!(f.len(), 1);
        assert!((f[0].throughput - 8.0).abs() < 1e-9);
        assert_eq!(f[0].mapping.modules, 8);
    }
}

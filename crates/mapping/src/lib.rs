#![warn(missing_docs)]

//! # fx-mapping — automatic mapping of data-parallel pipelines
//!
//! The mapping machinery behind Figure 5 and Table 1 of the paper: given
//! per-stage cost profiles `T_i(p)` (measured on the simulated machine by
//! `fx-bench`) and the data volumes crossing stage boundaries, find the
//! latency-optimal combination of **pipelining** (contiguous chain
//! segments on disjoint processor subsets) and **replication**
//! (independent modules processing the stream round-robin) subject to a
//! minimum-throughput constraint — the algorithms of the paper's
//! references \[21] (Subhlok & Vondran, PPoPP '95) and \[22] (SPAA '96).
//!
//! Pure model-side computation; no runtime dependency. `fx-bench`
//! couples it to the simulator: measure profiles → search mappings →
//! re-run the chosen mapping and compare predicted vs simulated.

mod chain;
mod frontier;
mod profile;

pub use chain::{
    best_mapping, evaluate, max_throughput_mapping, Boundary, ChainModel, Evaluated, Mapping,
    NetParams, Segment,
};
pub use frontier::tradeoff_frontier;
pub use profile::{ProfileTable, StageProfile};

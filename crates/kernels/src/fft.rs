//! One-dimensional fast Fourier transforms.
//!
//! Radix-2 iterative Cooley–Tukey, plus an O(n²) direct DFT used as the
//! test oracle. The FFT-Hist, radar and stereo applications call these on
//! the rows/columns they own; [`fft_flops`] is the standard operation
//! count the simulator charges for one transform.

use crate::complex::Complex;

/// In-place radix-2 FFT. `data.len()` must be a power of two.
/// `inverse` computes the unscaled inverse transform; callers divide by
/// `n` themselves if they need the unitary roundtrip.
pub fn fft_in_place(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "radix-2 FFT needs a power-of-two length, got {n}");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }

    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Forward FFT returning a new vector.
pub fn fft(data: &[Complex]) -> Vec<Complex> {
    let mut v = data.to_vec();
    fft_in_place(&mut v, false);
    v
}

/// Unitary inverse FFT returning a new vector (scaled by `1/n`).
pub fn ifft(data: &[Complex]) -> Vec<Complex> {
    let mut v = data.to_vec();
    fft_in_place(&mut v, true);
    let scale = 1.0 / v.len() as f64;
    for z in &mut v {
        *z = z.scale(scale);
    }
    v
}

/// FFT of **any** length via Bluestein's chirp-z algorithm (arbitrary-n
/// DFT as a convolution evaluated with power-of-two FFTs). Lets the
/// radar pipeline use the paper's exact 40-pulse (10 dwells × 4
/// channels) Doppler transform instead of padding to a power of two.
pub fn fft_any(data: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = data.len();
    if n <= 1 {
        return data.to_vec();
    }
    if n.is_power_of_two() {
        let mut v = data.to_vec();
        fft_in_place(&mut v, inverse);
        return v;
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    // Chirp w_k = e^{sign * i * pi * k^2 / n}; X_k = conj-chirped
    // convolution of (x_k * chirp_k) with conj(chirp).
    let chirp: Vec<Complex> = (0..n)
        .map(|k| {
            // k^2 mod 2n avoids precision loss for large k.
            let k2 = (k * k) % (2 * n);
            Complex::cis(sign * std::f64::consts::PI * k2 as f64 / n as f64)
        })
        .collect();
    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex::ZERO; m];
    for k in 0..n {
        a[k] = data[k] * chirp[k];
    }
    let mut b = vec![Complex::ZERO; m];
    for k in 0..n {
        let c = chirp[k].conj();
        b[k] = c;
        if k != 0 {
            b[m - k] = c;
        }
    }
    fft_in_place(&mut a, false);
    fft_in_place(&mut b, false);
    for (x, y) in a.iter_mut().zip(&b) {
        *x *= *y;
    }
    fft_in_place(&mut a, true);
    let scale = 1.0 / m as f64;
    (0..n).map(|k| (a[k] * chirp[k]).scale(scale)).collect()
}

/// Flop count for an arbitrary-length FFT: three power-of-two FFTs of
/// the padded length plus the chirp multiplications.
pub fn fft_any_flops(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    if n.is_power_of_two() {
        return fft_flops(n);
    }
    let m = (2 * n - 1).next_power_of_two();
    3.0 * fft_flops(m) + 12.0 * n as f64
}

/// Direct O(n²) DFT — the oracle for FFT tests. Any length.
pub fn dft_reference(data: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = data.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &x) in data.iter().enumerate() {
                let ang = sign * 2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc += x * Complex::cis(ang);
            }
            acc
        })
        .collect()
}

/// Floating point operations of one radix-2 FFT of length `n`
/// (the conventional `5 n log2 n` count).
pub fn fft_flops(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    5.0 * n as f64 * (n as f64).log2()
}

/// Sequential 2-D FFT of a row-major `rows x cols` matrix: columns first,
/// then rows (the FFT-Hist order). Used as the oracle for the distributed
/// pipeline. Both dimensions must be powers of two.
pub fn fft2d_reference(data: &[Complex], rows: usize, cols: usize) -> Vec<Complex> {
    assert_eq!(data.len(), rows * cols);
    let mut m = data.to_vec();
    // Column FFTs.
    let mut col = vec![Complex::ZERO; rows];
    for c in 0..cols {
        for r in 0..rows {
            col[r] = m[r * cols + c];
        }
        fft_in_place(&mut col, false);
        for r in 0..rows {
            m[r * cols + c] = col[r];
        }
    }
    // Row FFTs.
    for r in 0..rows {
        fft_in_place(&mut m[r * cols..(r + 1) * cols], false);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_vec(a: &[Complex], b: &[Complex], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.approx_eq(*y, tol))
    }

    #[test]
    fn impulse_transforms_to_ones() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        let y = fft(&x);
        assert!(y.iter().all(|z| z.approx_eq(Complex::ONE, 1e-12)));
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let x = vec![Complex::ONE; 16];
        let y = fft(&x);
        assert!(y[0].approx_eq(Complex::new(16.0, 0.0), 1e-9));
        assert!(y[1..].iter().all(|z| z.approx_eq(Complex::ZERO, 1e-9)));
    }

    #[test]
    fn matches_dft_reference() {
        for n in [1usize, 2, 4, 8, 32, 128] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let fast = fft(&x);
            let slow = dft_reference(&x, false);
            assert!(approx_vec(&fast, &slow, 1e-6), "n = {n}");
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let x: Vec<Complex> =
            (0..64).map(|i| Complex::new(i as f64, -(i as f64) * 0.5)).collect();
        let y = ifft(&fft(&x));
        assert!(approx_vec(&x, &y, 1e-9));
    }

    #[test]
    fn single_frequency_peaks_in_right_bin() {
        let n = 32;
        let k0 = 5;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::cis(2.0 * std::f64::consts::PI * (k0 * i) as f64 / n as f64))
            .collect();
        let y = fft(&x);
        for (k, z) in y.iter().enumerate() {
            if k == k0 {
                assert!(z.approx_eq(Complex::new(n as f64, 0.0), 1e-9));
            } else {
                assert!(z.abs() < 1e-9, "leak at bin {k}: {z:?}");
            }
        }
    }

    #[test]
    fn bluestein_matches_dft_for_awkward_lengths() {
        for n in [3usize, 5, 7, 12, 40, 100] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.9).cos(), (i as f64 * 0.4).sin()))
                .collect();
            let fast = fft_any(&x, false);
            let slow = dft_reference(&x, false);
            for (a, b) in fast.iter().zip(&slow) {
                assert!(a.approx_eq(*b, 1e-7 * n as f64), "n={n}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn bluestein_power_of_two_path_agrees_with_radix2() {
        let x: Vec<Complex> =
            (0..16).map(|i| Complex::new(i as f64, -(i as f64))).collect();
        assert_eq!(fft_any(&x, false), fft(&x));
    }

    #[test]
    fn bluestein_inverse_roundtrips() {
        let n = 40; // the radar's 10 dwells x 4 channels
        let x: Vec<Complex> =
            (0..n).map(|i| Complex::new((i as f64).sin(), (i as f64).cos())).collect();
        let y = fft_any(&x, false);
        let back: Vec<Complex> =
            fft_any(&y, true).into_iter().map(|z| z.scale(1.0 / n as f64)).collect();
        for (a, b) in x.iter().zip(&back) {
            assert!(a.approx_eq(*b, 1e-8), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn fft_any_flops_reasonable() {
        assert_eq!(fft_any_flops(16), fft_flops(16));
        assert!(fft_any_flops(40) > fft_flops(64));
        assert_eq!(fft_any_flops(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        let mut x = vec![Complex::ZERO; 12];
        fft_in_place(&mut x, false);
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(fft_flops(1), 0.0);
        assert_eq!(fft_flops(8), 5.0 * 8.0 * 3.0);
    }

    #[test]
    fn fft2d_matches_separable_reference() {
        let rows = 4;
        let cols = 8;
        let data: Vec<Complex> = (0..rows * cols)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let got = fft2d_reference(&data, rows, cols);
        // Independent check: full 2-D DFT.
        let mut expect = vec![Complex::ZERO; rows * cols];
        for kr in 0..rows {
            for kc in 0..cols {
                let mut acc = Complex::ZERO;
                for r in 0..rows {
                    for c in 0..cols {
                        let ang = -2.0 * std::f64::consts::PI
                            * ((kr * r) as f64 / rows as f64 + (kc * c) as f64 / cols as f64);
                        acc += data[r * cols + c] * Complex::cis(ang);
                    }
                }
                expect[kr * cols + kc] = acc;
            }
        }
        assert!(approx_vec(&got, &expect, 1e-6));
    }
}

//! Synthetic workload generators.
//!
//! The paper's inputs were physical sensor streams (MIT/LL radar data,
//! CMU camera images) and meteorological data; none are available, and
//! every kernel here is data-oblivious — only shapes and volumes affect
//! performance — so deterministic pseudo-random inputs with the paper's
//! data-set dimensions are faithful substitutes (see DESIGN.md §2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::complex::Complex;
use crate::nbody::Body;

/// A stream of complex images for FFT-Hist (`n x n` each).
pub fn complex_image(n: usize, seed: u64) -> Vec<Complex> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n * n)
        .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect()
}

/// One narrowband radar data cube flattened to a `dwell x range` complex
/// matrix (the paper's 512x10x4 data sets: 512 range gates, 10 dwells,
/// 4 channels → processed as matrices after the corner turn).
pub fn radar_matrix(rows: usize, cols: usize, seed: u64) -> Vec<Complex> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..rows * cols)
        .map(|i| {
            // A couple of synthetic targets over noise, so thresholding
            // detects something meaningful.
            let noise = Complex::new(rng.gen_range(-0.1..0.1), rng.gen_range(-0.1..0.1));
            if i % 97 == 0 {
                noise + Complex::new(2.0, 0.0)
            } else {
                noise
            }
        })
        .collect()
}

/// A grey-level image of the given size (multibaseline stereo input).
pub fn grey_image(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..rows * cols).map(|_| rng.gen_range(0.0f32..255.0)).collect()
}

/// A stereo triple: reference image plus `n_match` images shifted by a
/// known per-pixel disparity field (smoothly varying), so the recovered
/// depth is verifiable.
pub fn stereo_set(
    rows: usize,
    cols: usize,
    n_match: usize,
    max_disp: usize,
    seed: u64,
) -> (Vec<f32>, Vec<Vec<f32>>, Vec<u16>) {
    let reference = grey_image(rows, cols, seed);
    // Smooth, known disparity field.
    let truth: Vec<u16> = (0..rows * cols)
        .map(|i| {
            let (r, c) = (i / cols, i % cols);
            (((r + c) / 8) % max_disp) as u16
        })
        .collect();
    let matches: Vec<Vec<f32>> = (1..=n_match)
        .map(|m| {
            let mut img = vec![0f32; rows * cols];
            for r in 0..rows {
                for c in 0..cols {
                    // Camera m sees the scene shifted by m * disparity.
                    let sc = (c + m * truth[r * cols + c] as usize).min(cols - 1);
                    img[r * cols + c] = reference[r * cols + sc];
                }
            }
            img
        })
        .collect();
    (reference, matches, truth)
}

/// A uniform random particle cloud in the unit cube (Barnes-Hut input).
pub fn particle_cloud(n: usize, seed: u64) -> Vec<Body> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Body {
            pos: [rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)],
            mass: rng.gen_range(0.5..1.5),
        })
        .collect()
}

/// An Airshed concentration matrix: `layers x gridpoints x species`
/// (typical values 5 x 500-5000 x 35), flattened with gridpoints as the
/// leading (distributed) dimension.
pub fn airshed_concentrations(layers: usize, gridpoints: usize, species: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..layers * gridpoints * species).map(|_| rng.gen_range(0.0..1e-3)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(complex_image(8, 42), complex_image(8, 42));
        assert_eq!(grey_image(4, 4, 7), grey_image(4, 4, 7));
        assert_ne!(complex_image(8, 1), complex_image(8, 2));
    }

    #[test]
    fn shapes_are_right() {
        assert_eq!(complex_image(16, 0).len(), 256);
        assert_eq!(radar_matrix(10, 512, 0).len(), 5120);
        assert_eq!(particle_cloud(33, 0).len(), 33);
        assert_eq!(airshed_concentrations(5, 100, 35, 0).len(), 17500);
    }

    #[test]
    fn stereo_truth_is_recoverable_at_zero_window() {
        // With noiseless synthetic shifts, per-pixel SSD at the true
        // disparity is exactly zero away from the clamped right edge.
        let (reference, matches, truth) = stereo_set(16, 32, 2, 4, 3);
        for r in 0..16 {
            for c in 0..16 {
                // well away from the edge
                let p = r * 32 + c;
                let d = truth[p] as usize;
                for (mi, m) in matches.iter().enumerate() {
                    let shifted = crate::image::shift_columns(m, 16, 32, 0); // m as-is
                    let expect = reference[r * 32 + (c + (mi + 1) * d).min(31)];
                    assert_eq!(shifted[p], expect);
                }
            }
        }
    }

    #[test]
    fn radar_has_targets_above_noise() {
        let m = radar_matrix(10, 512, 9);
        let strong = m.iter().filter(|z| z.abs() > 1.0).count();
        assert!(strong > 10, "expected synthetic targets, found {strong}");
    }
}

//! Image kernels for the multibaseline stereo application.
//!
//! Stereo depth extraction (Okutomi & Kanade; Webb '93) per the paper's
//! description: for each candidate disparity, (1) difference images —
//! sum of squared differences between corresponding pixels of shifted
//! match images; (2) error images — sum over a surrounding pixel window;
//! (3) depth image — per-pixel argmin over disparities.

/// `out[p] = (a[p] - b[p])^2`, pixel-wise SSD contribution of one image
/// pair at one disparity.
pub fn squared_difference(a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), out.len());
    for ((x, y), o) in a.iter().zip(b).zip(out.iter_mut()) {
        let d = x - y;
        *o = d * d;
    }
}

/// Shift a row-major `rows x cols` image left by `disparity` pixels
/// (columns), clamping at the right edge — the geometry of multibaseline
/// matching along a horizontal baseline.
pub fn shift_columns(img: &[f32], rows: usize, cols: usize, disparity: usize) -> Vec<f32> {
    assert_eq!(img.len(), rows * cols);
    let mut out = vec![0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            let sc = (c + disparity).min(cols.saturating_sub(1));
            out[r * cols + c] = img[r * cols + sc];
        }
    }
    out
}

/// Horizontal box sum of half-width `w`: `out[r][c] = sum img[r][c-w ..= c+w]`
/// (clamped at edges). One half of the separable window sum; fully local
/// to a row.
pub fn box_sum_rows(img: &[f32], rows: usize, cols: usize, w: usize) -> Vec<f32> {
    assert_eq!(img.len(), rows * cols);
    let mut out = vec![0f32; rows * cols];
    for r in 0..rows {
        let row = &img[r * cols..(r + 1) * cols];
        for c in 0..cols {
            let lo = c.saturating_sub(w);
            let hi = (c + w).min(cols - 1);
            out[r * cols + c] = row[lo..=hi].iter().sum();
        }
    }
    out
}

/// Vertical box sum of half-width `w` over a tile that has `top`/`bottom`
/// ghost rows supplied by the neighbours (each `ghost_rows x cols`,
/// possibly fewer than `w` rows at the matrix edges). This is the half of
/// the separable window that crosses a `(BLOCK, *)` distribution.
pub fn box_sum_cols_with_halo(
    tile: &[f32],
    rows: usize,
    cols: usize,
    w: usize,
    top: &[f32],
    bottom: &[f32],
) -> Vec<f32> {
    assert_eq!(tile.len(), rows * cols);
    assert_eq!(top.len() % cols, 0);
    assert_eq!(bottom.len() % cols, 0);
    let top_rows = top.len() / cols;
    let bot_rows = bottom.len() / cols;
    let at = |r: isize, c: usize| -> f32 {
        if r < 0 {
            let tr = top_rows as isize + r; // r = -1 → last ghost row
            if tr < 0 {
                0.0
            } else {
                top[tr as usize * cols + c]
            }
        } else if (r as usize) < rows {
            tile[r as usize * cols + c]
        } else {
            let br = r as usize - rows;
            if br < bot_rows {
                bottom[br * cols + c]
            } else {
                0.0
            }
        }
    };
    let mut out = vec![0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            let mut acc = 0.0;
            for dr in -(w as isize)..=(w as isize) {
                acc += at(r as isize + dr, c);
            }
            out[r * cols + c] = acc;
        }
    }
    out
}

/// Horizontal box sum of half-width `w` over a tile that has `left` /
/// `right` ghost *columns* from the neighbours (each `rows x ghost_cols`,
/// row-major; possibly fewer than `w` columns at the matrix edges). The
/// half of the separable window that crosses a `(*, BLOCK)` distribution.
pub fn box_sum_rows_with_halo(
    tile: &[f32],
    rows: usize,
    cols: usize,
    w: usize,
    left: &[f32],
    right: &[f32],
) -> Vec<f32> {
    assert_eq!(tile.len(), rows * cols);
    assert_eq!(left.len() % rows.max(1), 0);
    assert_eq!(right.len() % rows.max(1), 0);
    let lw = left.len().checked_div(rows).unwrap_or(0);
    let rw = right.len().checked_div(rows).unwrap_or(0);
    let at = |r: usize, c: isize| -> f32 {
        if c < 0 {
            let lc = lw as isize + c; // c = -1 → last ghost column
            if lc < 0 {
                0.0
            } else {
                left[r * lw + lc as usize]
            }
        } else if (c as usize) < cols {
            tile[r * cols + c as usize]
        } else {
            let rc = c as usize - cols;
            if rc < rw {
                right[r * rw + rc]
            } else {
                0.0
            }
        }
    };
    let mut out = vec![0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            let mut acc = 0.0;
            for dc in -(w as isize)..=(w as isize) {
                acc += at(r, c as isize + dc);
            }
            out[r * cols + c] = acc;
        }
    }
    out
}

/// Sequential reference: full-image box window sum (2w+1)² with zero
/// padding outside the image — the oracle for the distributed error-image
/// computation.
pub fn window_sum_reference(img: &[f32], rows: usize, cols: usize, w: usize) -> Vec<f32> {
    assert_eq!(img.len(), rows * cols);
    let mut out = vec![0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            let mut acc = 0.0;
            for dr in -(w as isize)..=(w as isize) {
                let rr = r as isize + dr;
                if rr < 0 || rr >= rows as isize {
                    continue;
                }
                let lo = c.saturating_sub(w);
                let hi = (c + w).min(cols - 1);
                for cc in lo..=hi {
                    acc += img[rr as usize * cols + cc];
                }
            }
            out[r * cols + c] = acc;
        }
    }
    out
}

/// `depth[p] = argmin_d err[d][p]` — the final stereo stage.
pub fn argmin_depth(errors: &[Vec<f32>]) -> Vec<u16> {
    assert!(!errors.is_empty());
    let n = errors[0].len();
    assert!(errors.iter().all(|e| e.len() == n));
    (0..n)
        .map(|p| {
            let mut best = 0u16;
            let mut bestv = errors[0][p];
            for (d, e) in errors.iter().enumerate().skip(1) {
                if e[p] < bestv {
                    bestv = e[p];
                    best = d as u16;
                }
            }
            best
        })
        .collect()
}

/// Flops for the SSD stage over `n` pixels and one disparity.
pub fn ssd_flops(n: usize) -> f64 {
    3.0 * n as f64
}

/// Flops for a separable window sum of half-width `w` over `n` pixels.
pub fn window_flops(n: usize, w: usize) -> f64 {
    (2 * (2 * w + 1)) as f64 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_difference_basic() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [1.0f32, 4.0, 0.0];
        let mut out = [0f32; 3];
        squared_difference(&a, &b, &mut out);
        assert_eq!(out, [0.0, 4.0, 9.0]);
    }

    #[test]
    fn shift_clamps_at_edge() {
        // 1x4 image [0,1,2,3], disparity 2 → [2,3,3,3]
        let img = [0f32, 1.0, 2.0, 3.0];
        let s = shift_columns(&img, 1, 4, 2);
        assert_eq!(s, vec![2.0, 3.0, 3.0, 3.0]);
        assert_eq!(shift_columns(&img, 1, 4, 0), img.to_vec());
    }

    #[test]
    fn box_sum_rows_matches_manual() {
        // 1x5 [1,2,3,4,5], w=1 → [3,6,9,12,9]
        let img = [1f32, 2.0, 3.0, 4.0, 5.0];
        let s = box_sum_rows(&img, 1, 5, 1);
        assert_eq!(s, vec![3.0, 6.0, 9.0, 12.0, 9.0]);
    }

    #[test]
    fn separable_equals_reference() {
        let rows = 7;
        let cols = 6;
        let img: Vec<f32> = (0..rows * cols).map(|i| (i as f32 * 0.37).sin()).collect();
        for w in [0usize, 1, 2] {
            let expect = window_sum_reference(&img, rows, cols, w);
            let horiz = box_sum_rows(&img, rows, cols, w);
            let got = box_sum_cols_with_halo(&horiz, rows, cols, w, &[], &[]);
            for (g, e) in got.iter().zip(&expect) {
                assert!((g - e).abs() < 1e-4, "w={w}: {g} vs {e}");
            }
        }
    }

    #[test]
    fn halo_version_matches_reference_when_split() {
        let rows = 8;
        let cols = 5;
        let w = 2;
        let img: Vec<f32> = (0..rows * cols).map(|i| (i * i % 13) as f32).collect();
        let horiz = box_sum_rows(&img, rows, cols, w);
        let expect = window_sum_reference(&img, rows, cols, w);
        // Split into two 4-row tiles with 2-row halos.
        let (t0, t1) = horiz.split_at(4 * cols);
        let top_halo_of_t1 = &t0[2 * cols..]; // last 2 rows of t0
        let bottom_halo_of_t0 = &t1[..2 * cols]; // first 2 rows of t1
        let out0 = box_sum_cols_with_halo(t0, 4, cols, w, &[], bottom_halo_of_t0);
        let out1 = box_sum_cols_with_halo(t1, 4, cols, w, top_halo_of_t1, &[]);
        let got: Vec<f32> = out0.into_iter().chain(out1).collect();
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-4);
        }
    }

    #[test]
    fn column_split_halo_matches_plain_row_sum() {
        let rows = 3;
        let cols = 10;
        let w = 2;
        let img: Vec<f32> = (0..rows * cols).map(|i| (i * 7 % 11) as f32).collect();
        let expect = box_sum_rows(&img, rows, cols, w);
        // Split into two 5-column tiles with 2-column halos.
        let cut = 5;
        let slice_cols = |lo: usize, hi: usize| -> Vec<f32> {
            let mut v = Vec::new();
            for r in 0..rows {
                v.extend_from_slice(&img[r * cols + lo..r * cols + hi]);
            }
            v
        };
        let t0 = slice_cols(0, cut);
        let t1 = slice_cols(cut, cols);
        let right0 = slice_cols(cut, cut + w);
        let left1 = slice_cols(cut - w, cut);
        let out0 = box_sum_rows_with_halo(&t0, rows, cut, w, &[], &right0);
        let out1 = box_sum_rows_with_halo(&t1, rows, cols - cut, w, &left1, &[]);
        for r in 0..rows {
            for c in 0..cols {
                let got = if c < cut {
                    out0[r * cut + c]
                } else {
                    out1[r * (cols - cut) + (c - cut)]
                };
                assert!(
                    (got - expect[r * cols + c]).abs() < 1e-4,
                    "({r},{c}): {got} vs {}",
                    expect[r * cols + c]
                );
            }
        }
    }

    #[test]
    fn argmin_picks_smallest_disparity_layer() {
        let errors = vec![vec![5.0f32, 1.0], vec![3.0, 2.0], vec![4.0, 0.5]];
        assert_eq!(argmin_depth(&errors), vec![1, 2]);
    }
}

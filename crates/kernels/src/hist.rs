//! Histogram kernel — the `hist` stage of FFT-Hist.
//!
//! The stage computes a magnitude histogram of a transformed image. Local
//! counts from each processor are combined with an element-wise vector
//! add (a group reduce in the distributed version).

use crate::complex::Complex;

/// Histogram of `|z|` over `nbins` equal bins in `[0, max_mag)`; values at
/// or above `max_mag` land in the last bin.
pub fn histogram_magnitudes(data: &[Complex], nbins: usize, max_mag: f64) -> Vec<u64> {
    assert!(nbins >= 1, "need at least one bin");
    assert!(max_mag > 0.0, "max_mag must be positive");
    let mut bins = vec![0u64; nbins];
    let scale = nbins as f64 / max_mag;
    for z in data {
        let b = ((z.abs() * scale) as usize).min(nbins - 1);
        bins[b] += 1;
    }
    bins
}

/// Element-wise accumulation used to combine partial histograms.
pub fn merge_histograms(a: &mut [u64], b: &[u64]) {
    assert_eq!(a.len(), b.len(), "histogram size mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// Flops charged per element for the histogram stage (one multiply, one
/// square root path approximated, one compare).
pub fn hist_flops(n_elems: usize) -> f64 {
    8.0 * n_elems as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_count_correctly() {
        let data = vec![
            Complex::new(0.5, 0.0),  // |z| = 0.5 → bin 0
            Complex::new(0.0, 1.5),  // 1.5 → bin 1
            Complex::new(3.0, 4.0),  // 5.0 → clamps to last bin
            Complex::new(0.9, 0.0),  // bin 0
        ];
        let h = histogram_magnitudes(&data, 4, 4.0);
        assert_eq!(h, vec![2, 1, 0, 1]);
        assert_eq!(h.iter().sum::<u64>(), 4);
    }

    #[test]
    fn merge_adds_elementwise() {
        let mut a = vec![1, 2, 3];
        merge_histograms(&mut a, &[10, 20, 30]);
        assert_eq!(a, vec![11, 22, 33]);
    }

    #[test]
    fn total_count_is_preserved_across_splits() {
        let data: Vec<Complex> =
            (0..100).map(|i| Complex::new(i as f64 * 0.1, 0.0)).collect();
        let whole = histogram_magnitudes(&data, 16, 10.0);
        let mut merged = histogram_magnitudes(&data[..37], 16, 10.0);
        merge_histograms(&mut merged, &histogram_magnitudes(&data[37..], 16, 10.0));
        assert_eq!(whole, merged);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        histogram_magnitudes(&[], 0, 1.0);
    }
}

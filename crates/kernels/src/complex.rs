//! A minimal complex number type for the signal-processing kernels.
//!
//! Kept local (rather than pulling in a numerics crate) so the whole
//! reproduction is self-contained; only the operations the FFT and the
//! sensor applications need are provided.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Construct from real and imaginary parts.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{i theta}` — the FFT twiddle factor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Squared magnitude `|z|^2` (no square root — what the histogram and
    /// SSD kernels actually need).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiply both parts by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex { re: self.re * s, im: self.im * s }
    }

    /// Approximate equality for test assertions.
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex { re: self.re + o.re, im: self.im + o.im }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex { re: self.re - o.re, im: self.im - o.im }
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, o: Complex) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, o: Complex) {
        *self = *self * o;
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(3.0, -2.0);
        let b = Complex::new(-1.0, 4.0);
        assert_eq!(a + b, Complex::new(2.0, 2.0));
        assert_eq!(a - b, Complex::new(4.0, -6.0));
        // (3-2i)(-1+4i) = -3 + 12i + 2i - 8i^2 = 5 + 14i
        assert_eq!(a * b, Complex::new(5.0, 14.0));
        assert_eq!(-a, Complex::new(-3.0, 2.0));
        assert_eq!(a * Complex::ONE, a);
        assert_eq!(a + Complex::ZERO, a);
    }

    #[test]
    fn cis_and_conj() {
        let z = Complex::cis(std::f64::consts::PI / 2.0);
        assert!(z.approx_eq(Complex::new(0.0, 1.0), 1e-12));
        assert_eq!(z.conj().im, -z.im);
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
        assert_eq!(Complex::new(3.0, 4.0).norm_sqr(), 25.0);
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex::new(1.0, 1.0);
        z += Complex::new(1.0, 0.0);
        z -= Complex::new(0.0, 1.0);
        z *= Complex::new(2.0, 0.0);
        assert_eq!(z, Complex::new(4.0, 0.0));
        assert_eq!(z.scale(0.5), Complex::new(2.0, 0.0));
    }
}

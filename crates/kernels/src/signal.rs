//! Scaling and thresholding — the last two stages of the narrowband
//! tracking radar pipeline (corner turn → row FFTs → scaling →
//! thresholding; Shaw et al., MIT Lincoln Laboratory).

use crate::complex::Complex;

/// Multiply every sample by a scalar gain (the radar scaling step).
pub fn scale_in_place(data: &mut [Complex], gain: f64) {
    for z in data {
        *z = z.scale(gain);
    }
}

/// Threshold detection: 1 where `|z|` is at or above `thresh`, else 0.
pub fn threshold_detect(data: &[Complex], thresh: f64) -> Vec<u8> {
    data.iter().map(|z| u8::from(z.abs() >= thresh)).collect()
}

/// Count of detections (used as a cheap checksum in tests/benches).
pub fn detection_count(data: &[Complex], thresh: f64) -> usize {
    data.iter().filter(|z| z.abs() >= thresh).count()
}

/// Flops of the scaling stage over `n` samples.
pub fn scale_flops(n: usize) -> f64 {
    2.0 * n as f64
}

/// Flops of the threshold stage over `n` samples.
pub fn threshold_flops(n: usize) -> f64 {
    4.0 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_scales() {
        let mut d = vec![Complex::new(1.0, -2.0), Complex::new(0.5, 0.0)];
        scale_in_place(&mut d, 2.0);
        assert_eq!(d[0], Complex::new(2.0, -4.0));
        assert_eq!(d[1], Complex::new(1.0, 0.0));
    }

    #[test]
    fn threshold_marks_strong_samples() {
        let d = vec![
            Complex::new(3.0, 4.0), // |z| = 5
            Complex::new(0.1, 0.0),
            Complex::new(0.0, 2.0),
        ];
        assert_eq!(threshold_detect(&d, 2.0), vec![1, 0, 1]);
        assert_eq!(detection_count(&d, 2.0), 2);
        assert_eq!(detection_count(&d, 10.0), 0);
    }

    #[test]
    fn empty_input_is_fine() {
        let mut d: Vec<Complex> = Vec::new();
        scale_in_place(&mut d, 3.0);
        assert!(threshold_detect(&d, 1.0).is_empty());
    }
}

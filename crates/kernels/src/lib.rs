#![warn(missing_docs)]

//! # fx-kernels — sequential numeric kernels
//!
//! The computation stages of the paper's applications, as plain sequential
//! Rust: FFTs (FFT-Hist, radar), histograms, image window sums and SSD
//! (multibaseline stereo), scaling/thresholding (radar), and the
//! Barnes-Hut tree math of Figure 7. The distributed applications in
//! `fx-apps` call these on locally owned data and charge the documented
//! flop counts to the simulator's virtual clocks.
//!
//! Everything here is independent of the runtime — pure functions with
//! sequential oracles used by the test suites of the layers above.

pub mod complex;
pub mod fft;
pub mod gen;
pub mod hist;
pub mod image;
pub mod nbody;
pub mod signal;

pub use complex::Complex;
pub use nbody::{BhTree, Body};

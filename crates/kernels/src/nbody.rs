//! Barnes-Hut tree math (paper §5.3, Figure 7).
//!
//! The paper's variant builds a *balanced binary tree* of cells by evenly
//! partitioning the particles along each axis in turn (x, y, z, x, …) —
//! partitioning "very similar to the partitioning in quicksort". Forces
//! are computed with the standard multipole acceptance criterion (MAC);
//! a traversal that needs to open a subtree marked **remote** (not present
//! in this processor's partial copy) aborts and reports it, so the caller
//! can put the particle on the worklist passed up to the parent subgroup.
//!
//! Everything here is sequential; `fx-apps::barnes_hut` layers the
//! recursive processor subdivision, the top-`k`-level replication and the
//! worklist protocol on top.

/// A point mass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Body {
    /// Position in space.
    pub pos: [f64; 3],
    /// Mass (G = 1 units).
    pub mass: f64,
}

/// One cell of the balanced Barnes-Hut tree.
#[derive(Debug, Clone, Copy)]
pub struct Node {
    /// Centre of mass of the cell's particles.
    pub com: [f64; 3],
    /// Total mass.
    pub mass: f64,
    /// Radius of the bounding sphere around `com`.
    pub radius: f64,
    /// Range of (sorted) particle indices covered: `start .. start + len`.
    pub start: usize,
    /// Number of particles in the cell.
    pub len: usize,
    /// Child node indices; `None` for leaves *and* for remote stubs.
    pub children: Option<(usize, usize)>,
    /// True when the cell's subtree exists on another processor only: the
    /// summary (com/mass/radius) is valid but the cell cannot be opened.
    pub remote: bool,
}

/// A balanced Barnes-Hut tree over a set of particles.
///
/// `bodies` are stored in tree order (the order produced by the recursive
/// median partitioning), mirroring the paper's note that "the particles
/// will be sorted based on the ordering of the leaves".
#[derive(Debug, Clone, Default)]
pub struct BhTree {
    /// All cells; children are indices into this vector.
    pub nodes: Vec<Node>,
    /// Particles in tree (leaf) order.
    pub bodies: Vec<Body>,
    /// `order[i]` is the *original* index of tree-ordered body `i`
    /// (the build sorts bodies by leaf order; integrators use this to map
    /// forces back to input order).
    pub order: Vec<usize>,
    /// Index of the root node (0 unless the tree is empty).
    pub root: usize,
}

impl BhTree {
    /// Build the tree by recursive median splits along cycling axes
    /// (`build_bh_tree` of Figure 7).
    pub fn build(bodies: Vec<Body>) -> BhTree {
        let mut tagged: Vec<(Body, usize)> =
            bodies.into_iter().enumerate().map(|(i, b)| (b, i)).collect();
        let mut nodes = Vec::new();
        if tagged.is_empty() {
            return BhTree { nodes, bodies: Vec::new(), order: Vec::new(), root: 0 };
        }
        let n = tagged.len();
        let root = build_rec(&mut tagged, 0, n, 0, &mut nodes);
        let (bodies, order): (Vec<Body>, Vec<usize>) = tagged.into_iter().unzip();
        BhTree { nodes, bodies, order, root }
    }

    /// Number of particles.
    pub fn n_bodies(&self) -> usize {
        self.bodies.len()
    }

    /// Compute the acceleration on a particle at `pos` using opening angle
    /// `theta` and Plummer softening `eps`.
    ///
    /// Returns `None` if the traversal needed to open a remote cell — the
    /// particle must go on the worklist for a processor with a fuller tree.
    pub fn force_at(&self, pos: [f64; 3], theta: f64, eps: f64) -> Option<[f64; 3]> {
        self.force_at_counting(pos, theta, eps).0
    }

    /// Like [`BhTree::force_at`] but also reports the number of cells
    /// visited, which the simulator charges as interaction work.
    pub fn force_at_counting(
        &self,
        pos: [f64; 3],
        theta: f64,
        eps: f64,
    ) -> (Option<[f64; 3]>, usize) {
        if self.nodes.is_empty() {
            return (Some([0.0; 3]), 0);
        }
        let mut acc = [0.0f64; 3];
        let mut visits = 0usize;
        if self.force_rec(self.root, pos, theta, eps, &mut acc, &mut visits) {
            (Some(acc), visits)
        } else {
            (None, visits)
        }
    }

    fn force_rec(
        &self,
        idx: usize,
        pos: [f64; 3],
        theta: f64,
        eps: f64,
        acc: &mut [f64; 3],
        visits: &mut usize,
    ) -> bool {
        *visits += 1;
        let node = &self.nodes[idx];
        let d = dist(pos, node.com);
        let is_leaf_like = node.children.is_none() && !node.remote;
        // MAC: the cell is far enough that its monopole suffices.
        if is_leaf_like || d > node.radius / theta {
            if d > 0.0 || eps > 0.0 {
                add_gravity(pos, node.com, node.mass, eps, acc);
            }
            return true;
        }
        match node.children {
            Some((l, r)) => {
                self.force_rec(l, pos, theta, eps, acc, visits)
                    && self.force_rec(r, pos, theta, eps, acc, visits)
            }
            // MAC failed on a remote stub: cannot resolve locally.
            None => false,
        }
    }

    /// Extract the partial tree for one half of the particle range
    /// (`partition_bh_tree` of Figure 7): the top `k` levels are kept in
    /// full, the subtree covering `lo..hi` is kept in full, and every
    /// other internal cell becomes a *remote* summary stub.
    pub fn split_range(&self, lo: usize, hi: usize, k: usize) -> BhTree {
        let mut nodes = Vec::new();
        if self.nodes.is_empty() {
            return BhTree { nodes, bodies: Vec::new(), order: Vec::new(), root: 0 };
        }
        let root = self.split_rec(self.root, 0, k, lo, hi, &mut nodes);
        // Bodies travel with the tree (force evaluation itself only needs
        // node summaries; the bodies are kept for the caller's own range).
        BhTree { nodes, bodies: self.bodies.clone(), order: self.order.clone(), root }
    }

    fn split_rec(
        &self,
        idx: usize,
        depth: usize,
        k: usize,
        lo: usize,
        hi: usize,
        out: &mut Vec<Node>,
    ) -> usize {
        let node = self.nodes[idx];
        let new_idx = out.len();
        out.push(node); // placeholder; fixed up below
        let overlaps = node.start < hi && node.start + node.len > lo;
        let expand = node.children.is_some() && (depth < k || overlaps);
        if expand {
            let (l, r) = node.children.expect("checked above");
            let li = self.split_rec(l, depth + 1, k, lo, hi, out);
            let ri = self.split_rec(r, depth + 1, k, lo, hi, out);
            out[new_idx].children = Some((li, ri));
            out[new_idx].remote = false;
        } else {
            out[new_idx].children = None;
            // An unexpanded internal cell is a remote summary; an
            // unexpanded leaf is complete as-is. A cell that was already
            // remote (splitting an existing partial tree) stays remote —
            // otherwise it would masquerade as a leaf and skip the MAC.
            out[new_idx].remote = node.children.is_some() || node.remote;
        }
        new_idx
    }

    /// Depth of the tree (root = level 0); for sizing the replication
    /// parameter `k`.
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], i: usize) -> usize {
            match nodes[i].children {
                None => 0,
                Some((l, r)) => 1 + rec(nodes, l).max(rec(nodes, r)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, self.root)
        }
    }
}

fn build_rec(
    bodies: &mut [(Body, usize)],
    start: usize,
    len: usize,
    axis: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    let slice = &mut bodies[start..start + len];
    let (com, mass) = center_of_mass(slice);
    let radius = slice
        .iter()
        .map(|(b, _)| dist(b.pos, com))
        .fold(0.0f64, f64::max);
    let idx = nodes.len();
    nodes.push(Node { com, mass, radius, start, len, children: None, remote: false });
    if len > 1 {
        let mid = len / 2;
        // Median split along the current axis (quicksort-style selection).
        slice.select_nth_unstable_by(mid, |a, b| a.0.pos[axis].total_cmp(&b.0.pos[axis]));
        let l = build_rec(bodies, start, mid, (axis + 1) % 3, nodes);
        let r = build_rec(bodies, start + mid, len - mid, (axis + 1) % 3, nodes);
        nodes[idx].children = Some((l, r));
    }
    idx
}

fn center_of_mass(bodies: &[(Body, usize)]) -> ([f64; 3], f64) {
    // A single body's cell must sit *exactly* at the body: computing
    // (m·p)/m instead would shift it by an ulp, and the softened
    // self-interaction then contributes a spurious ~m/eps² force.
    if let [(b, _)] = bodies {
        return (b.pos, b.mass);
    }
    let mut m = 0.0;
    let mut c = [0.0f64; 3];
    for (b, _) in bodies {
        m += b.mass;
        for (ci, pi) in c.iter_mut().zip(b.pos) {
            *ci += b.mass * pi;
        }
    }
    if m > 0.0 {
        for ci in &mut c {
            *ci /= m;
        }
    }
    (c, m)
}

/// Total energy of a configuration (kinetic from `velocities` plus
/// softened pairwise potential) — the conservation check for
/// integrators. O(n²); test-scale use only.
pub fn total_energy(bodies: &[Body], velocities: &[[f64; 3]], eps: f64) -> f64 {
    assert_eq!(bodies.len(), velocities.len());
    let mut e = 0.0;
    for (b, v) in bodies.iter().zip(velocities) {
        e += 0.5 * b.mass * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
    }
    for i in 0..bodies.len() {
        for j in i + 1..bodies.len() {
            let d2 = {
                let dx = bodies[i].pos[0] - bodies[j].pos[0];
                let dy = bodies[i].pos[1] - bodies[j].pos[1];
                let dz = bodies[i].pos[2] - bodies[j].pos[2];
                dx * dx + dy * dy + dz * dz + eps * eps
            };
            e -= bodies[i].mass * bodies[j].mass / d2.sqrt();
        }
    }
    e
}

fn dist(a: [f64; 3], b: [f64; 3]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    (dx * dx + dy * dy + dz * dz).sqrt()
}

/// Accumulate the (G = 1) gravitational acceleration exerted at `pos` by a
/// mass `m` at `src`, with Plummer softening `eps`.
fn add_gravity(pos: [f64; 3], src: [f64; 3], m: f64, eps: f64, acc: &mut [f64; 3]) {
    let dx = src[0] - pos[0];
    let dy = src[1] - pos[1];
    let dz = src[2] - pos[2];
    let r2 = dx * dx + dy * dy + dz * dz + eps * eps;
    if r2 == 0.0 {
        return; // exactly self, unsoftened: no self-force
    }
    let inv_r = 1.0 / r2.sqrt();
    let f = m * inv_r * inv_r * inv_r;
    acc[0] += f * dx;
    acc[1] += f * dy;
    acc[2] += f * dz;
}

/// Direct O(n²) force summation — the oracle for Barnes-Hut accuracy
/// tests and the deepest recursion level of Figure 7.
pub fn direct_forces(bodies: &[Body], eps: f64) -> Vec<[f64; 3]> {
    bodies
        .iter()
        .map(|bi| {
            let mut acc = [0.0f64; 3];
            for bj in bodies {
                if std::ptr::eq(bi, bj) {
                    continue;
                }
                add_gravity(bi.pos, bj.pos, bj.mass, eps, &mut acc);
            }
            acc
        })
        .collect()
}

/// Flops of one body-body interaction (distance, inverse sqrt, accumulate).
pub fn interaction_flops() -> f64 {
    20.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize, seed: u64) -> Vec<Body> {
        // Deterministic quasi-random cloud (no rand dependency needed here).
        (0..n)
            .map(|i| {
                let h = |k: u64| {
                    let mut z = seed.wrapping_add(i as u64).wrapping_mul(k);
                    z ^= z >> 33;
                    z = z.wrapping_mul(0xFF51AFD7ED558CCD);
                    z ^= z >> 33;
                    (z % 10_000) as f64 / 10_000.0
                };
                Body { pos: [h(0x9E3779B1), h(0x85EBCA77), h(0xC2B2AE3D)], mass: 1.0 + h(7) }
            })
            .collect()
    }

    #[test]
    fn tree_is_balanced_and_covers_all_bodies() {
        let t = BhTree::build(cloud(100, 1));
        assert_eq!(t.n_bodies(), 100);
        let root = &t.nodes[t.root];
        assert_eq!((root.start, root.len), (0, 100));
        // A balanced binary tree over 100 leaves has depth ceil(log2 100) = 7.
        assert_eq!(t.depth(), 7);
        // Leaves partition the index range exactly.
        let mut leaf_cover = vec![0u32; 100];
        for n in &t.nodes {
            if n.children.is_none() {
                assert_eq!(n.len, 1);
                leaf_cover[n.start] += 1;
            }
        }
        assert!(leaf_cover.iter().all(|&c| c == 1));
    }

    #[test]
    fn com_and_mass_are_consistent_up_the_tree() {
        let t = BhTree::build(cloud(64, 2));
        for n in &t.nodes {
            if let Some((l, r)) = n.children {
                let (nl, nr) = (&t.nodes[l], &t.nodes[r]);
                assert!((n.mass - nl.mass - nr.mass).abs() < 1e-9);
                for d in 0..3 {
                    let blended = (nl.com[d] * nl.mass + nr.com[d] * nr.mass) / n.mass;
                    assert!((n.com[d] - blended).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn bh_forces_approximate_direct_sum() {
        let bodies = cloud(200, 3);
        let t = BhTree::build(bodies.clone());
        let exact = direct_forces(&t.bodies, 1e-3);
        let mut max_rel = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut count = 0;
        for (b, e) in t.bodies.iter().zip(&exact) {
            let got = t.force_at(b.pos, 0.3, 1e-3).expect("full tree never bails");
            let mag = (e[0] * e[0] + e[1] * e[1] + e[2] * e[2]).sqrt();
            let err = ((got[0] - e[0]).powi(2) + (got[1] - e[1]).powi(2) + (got[2] - e[2]).powi(2))
                .sqrt();
            if mag > 1e-9 {
                let rel = err / mag;
                max_rel = max_rel.max(rel);
                sum_sq += rel * rel;
                count += 1;
            }
        }
        let rms = (sum_sq / count as f64).sqrt();
        // Monopole-only BH at theta = 0.3: a few percent RMS; individual
        // particles with near-cancelling net forces can be worse.
        assert!(rms < 0.02, "BH RMS error too large: {rms}");
        assert!(max_rel < 0.15, "BH max error too large: {max_rel}");
    }

    #[test]
    fn theta_zero_like_behaviour_is_exact() {
        // Tiny theta forces opening every cell → exact (leaf-level) sums.
        let bodies = cloud(32, 4);
        let t = BhTree::build(bodies);
        let exact = direct_forces(&t.bodies, 1e-3);
        for (b, e) in t.bodies.iter().zip(&exact) {
            let got = t.force_at(b.pos, 1e-9, 1e-3).unwrap();
            for d in 0..3 {
                assert!(
                    (got[d] - e[d]).abs() < 1e-9,
                    "axis {d}: got {} expected {} (diff {})",
                    got[d],
                    e[d],
                    got[d] - e[d]
                );
            }
        }
    }

    #[test]
    fn split_keeps_own_half_and_stubs_other() {
        let t = BhTree::build(cloud(64, 5));
        let half = t.split_range(0, 32, 2);
        // Summaries intact at the root.
        assert!((half.nodes[half.root].mass - t.nodes[t.root].mass).abs() < 1e-12);
        // Some remote stubs must exist, all outside [0, 32).
        let stubs: Vec<&Node> = half.nodes.iter().filter(|n| n.remote).collect();
        assert!(!stubs.is_empty());
        for s in &stubs {
            assert!(s.start >= 32, "stub covering own half");
        }
        // Every leaf of my half is present.
        let mut covered = [false; 32];
        for n in &half.nodes {
            if n.children.is_none() && !n.remote && n.len == 1 && n.start < 32 {
                covered[n.start] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "missing own-half leaves");
    }

    #[test]
    fn partial_tree_bails_only_for_near_remote_cells() {
        let bodies = cloud(128, 6);
        let t = BhTree::build(bodies);
        // Replicate 3 levels: stubs are ~1/8-of-the-cloud cells, so distant
        // particles resolve locally while nearby ones must be passed up.
        let half = t.split_range(0, 64, 3);
        let mut bailed = 0;
        let mut matched = 0;
        for b in &t.bodies[0..64] {
            match half.force_at(b.pos, 0.5, 1e-3) {
                None => bailed += 1,
                Some(got) => {
                    let full = t.force_at(b.pos, 0.5, 1e-3).unwrap();
                    for d in 0..3 {
                        assert!((got[d] - full[d]).abs() < 1e-9);
                    }
                    matched += 1;
                }
            }
        }
        // Both outcomes occur for a random cloud: nearby particles need the
        // other half opened, distant ones are satisfied by summaries.
        assert!(bailed > 0, "expected some worklist particles");
        assert!(matched > 0, "expected some locally-resolved particles");
    }

    #[test]
    fn empty_and_singleton_trees() {
        let t0 = BhTree::build(Vec::new());
        assert_eq!(t0.force_at([0.0; 3], 0.5, 1e-3), Some([0.0; 3]));
        let t1 = BhTree::build(vec![Body { pos: [1.0, 0.0, 0.0], mass: 2.0 }]);
        assert_eq!(t1.depth(), 0);
        let f = t1.force_at([0.0; 3], 0.5, 0.0).unwrap();
        assert!((f[0] - 2.0).abs() < 1e-12); // m/r² toward +x
    }
}

//! Property tests for the numeric kernels.

use fx_kernels::complex::Complex;
use fx_kernels::fft::{dft_reference, fft, fft_in_place, ifft};
use fx_kernels::hist::{histogram_magnitudes, merge_histograms};
use fx_kernels::image::{box_sum_cols_with_halo, box_sum_rows, window_sum_reference};
use proptest::prelude::*;

fn arb_signal(max_log: u32) -> impl Strategy<Value = Vec<Complex>> {
    (0..=max_log).prop_flat_map(|log| {
        let n = 1usize << log;
        proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), n)
            .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FFT agrees with the O(n²) DFT oracle.
    #[test]
    fn fft_matches_dft(x in arb_signal(7)) {
        let fast = fft(&x);
        let slow = dft_reference(&x, false);
        let scale = x.iter().map(|z| z.abs()).sum::<f64>().max(1.0);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a.re - b.re).abs() < 1e-8 * scale, "{a:?} vs {b:?}");
            prop_assert!((a.im - b.im).abs() < 1e-8 * scale);
        }
    }

    /// ifft(fft(x)) == x.
    #[test]
    fn fft_roundtrip(x in arb_signal(8)) {
        let y = ifft(&fft(&x));
        let scale = x.iter().map(|z| z.abs()).fold(1.0f64, f64::max);
        for (a, b) in x.iter().zip(&y) {
            prop_assert!(a.approx_eq(*b, 1e-9 * scale));
        }
    }

    /// Linearity: FFT(a + b) == FFT(a) + FFT(b).
    #[test]
    fn fft_is_linear(pair in (0..=6u32).prop_flat_map(|log| {
        let n = 1usize << log;
        (proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), n),
         proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), n))
    })) {
        let (a, b) = pair;
        let a: Vec<Complex> = a.into_iter().map(|(re, im)| Complex::new(re, im)).collect();
        let b: Vec<Complex> = b.into_iter().map(|(re, im)| Complex::new(re, im)).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let lhs = fft(&sum);
        let fa = fft(&a);
        let fb = fft(&b);
        for (l, (x, y)) in lhs.iter().zip(fa.iter().zip(&fb)) {
            prop_assert!(l.approx_eq(*x + *y, 1e-7));
        }
    }

    /// Parseval: sum |x|² == sum |X|² / n.
    #[test]
    fn fft_parseval(x in arb_signal(7)) {
        let mut y = x.clone();
        fft_in_place(&mut y, false);
        let t_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let f_energy: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len().max(1) as f64;
        prop_assert!((t_energy - f_energy).abs() <= 1e-8 * t_energy.max(1.0));
    }

    /// Histogram totals always equal the element count, however split.
    #[test]
    fn histogram_total_and_merge(
        data in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 0..200),
        nbins in 1usize..32,
        split in 0usize..200,
    ) {
        let data: Vec<Complex> = data.into_iter().map(|(re, im)| Complex::new(re, im)).collect();
        let split = split.min(data.len());
        let whole = histogram_magnitudes(&data, nbins, 75.0);
        prop_assert_eq!(whole.iter().sum::<u64>(), data.len() as u64);
        let mut merged = histogram_magnitudes(&data[..split], nbins, 75.0);
        merge_histograms(&mut merged, &histogram_magnitudes(&data[split..], nbins, 75.0));
        prop_assert_eq!(whole, merged);
    }

    /// Separable box sums with halos equal the 2-D reference for any split.
    #[test]
    fn window_sum_split_invariance(
        rows in 2usize..12,
        cols in 1usize..10,
        w in 0usize..3,
        cut in 1usize..11,
        seed in 0u32..100,
    ) {
        let cut = cut.min(rows - 1);
        let img: Vec<f32> = (0..rows * cols)
            .map(|i| ((i as u32).wrapping_mul(seed + 1) % 97) as f32)
            .collect();
        let expect = window_sum_reference(&img, rows, cols, w);
        let horiz = box_sum_rows(&img, rows, cols, w);
        let (t0, t1) = horiz.split_at(cut * cols);
        let halo_rows0 = w.min(rows - cut);
        let halo_rows1 = w.min(cut);
        let bottom0 = &t1[..halo_rows0 * cols];
        let top1 = &t0[(cut - halo_rows1) * cols..];
        let out0 = box_sum_cols_with_halo(t0, cut, cols, w, &[], bottom0);
        let out1 = box_sum_cols_with_halo(t1, rows - cut, cols, w, top1, &[]);
        let got: Vec<f32> = out0.into_iter().chain(out1).collect();
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!((g - e).abs() < 1e-3, "{g} vs {e}");
        }
    }
}

//! Property: serving changes scheduling, never answers.
//!
//! Random open-loop traces pushed through random admission configs and
//! mappings must answer every served request bit-identically to the
//! sequential oracle, conserve request counters, and produce
//! bit-identical virtual times on both executors.

use fx_apps::ffthist::{reference_histogram, FftHistConfig, FftHistMapping};
use fx_core::{Machine, MachineModel};
use fx_runtime::Executor;
use fx_serve::{poisson_trace, FftHistServable, ServeConfig, Server, ShedPolicy, TenantSpec};
use proptest::prelude::*;

fn mapping_strategy() -> impl Strategy<Value = FftHistMapping> {
    prop_oneof![
        Just(FftHistMapping::DataParallel),
        Just(FftHistMapping::Pipeline([1, 2, 1])),
        Just(FftHistMapping::Replicated { replicas: 2, pipeline: None }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn served_answers_are_oracle_exact_and_executor_invariant(
        seed in 0u64..1_000_000,
        rate in 20.0f64..3000.0,
        nreq in 2usize..9,
        ntenants in 1usize..3,
        batch_max in 1usize..4,
        queue_cap in 1usize..8,
        drop_oldest in any::<bool>(),
        mapping in mapping_strategy(),
    ) {
        let cfg = FftHistConfig::new(8, 1);
        let tenants: Vec<TenantSpec> = (0..ntenants)
            .map(|t| TenantSpec::new(&format!("t{t}"), rate / ntenants as f64, nreq))
            .collect();
        let names: Vec<&str> = tenants.iter().map(|t| t.name.as_str()).collect();
        let trace = poisson_trace(&tenants, seed);
        let shed = if drop_oldest { ShedPolicy::DropOldest } else { ShedPolicy::DropNewest };
        let serve_cfg = ServeConfig { queue_cap, batch_max, shed };

        let run = |exec: Executor, tracing: bool| {
            Server::new(
                Machine::simulated(4, MachineModel::paragon())
                    .with_executor(exec)
                    .with_tracing(tracing),
                FftHistServable { cfg, mapping },
            )
            .with_config(serve_cfg)
            .serve(&trace, &names)
        };
        let a = run(Executor::Threaded, false);
        let b = run(Executor::Pooled { workers: 2 }, false);
        let ta = run(Executor::Threaded, true);
        let tb = run(Executor::Pooled { workers: 2 }, true);

        // Counter conservation and no lost requests, under any load.
        prop_assert!(a.conserved());
        prop_assert_eq!(a.completed() + a.shed.len(), trace.len());

        // Every served answer matches the sequential oracle bit-for-bit.
        for c in &a.completions {
            prop_assert_eq!(&c.output, &reference_histogram(&cfg, trace[c.req].dataset));
            prop_assert!(c.done >= trace[c.req].arrival);
        }

        // Executor invariance: identical decisions, identical virtual
        // times, identical SLO accounting.
        prop_assert_eq!(&a.times, &b.times);
        prop_assert_eq!(&a.shed, &b.shed);
        prop_assert_eq!(a.completions.len(), b.completions.len());
        for (x, y) in a.completions.iter().zip(&b.completions) {
            prop_assert_eq!(x.req, y.req);
            prop_assert_eq!(&x.output, &y.output);
            prop_assert_eq!(x.done.to_bits(), y.done.to_bits());
        }
        prop_assert_eq!(&a.tenants, &b.tenants);

        // Tracing is free on the virtual clock: same finish and
        // completion times as the untraced run, on both executors.
        for (traced, plain) in [(&ta, &a), (&tb, &b)] {
            prop_assert_eq!(&traced.times, &plain.times);
            prop_assert_eq!(traced.completions.len(), plain.completions.len());
            for (x, y) in traced.completions.iter().zip(&plain.completions) {
                prop_assert_eq!(x.done.to_bits(), y.done.to_bits());
            }
        }

        // Per-request decompositions: one per completion, components
        // summing exactly to end-to-end latency, on both executors.
        for traced in [&ta, &tb] {
            prop_assert_eq!(traced.request_traces.len(), traced.completions.len());
            for t in &traced.request_traces {
                let sum: f64 = t.components().iter().map(|(_, v)| *v).sum();
                prop_assert!(
                    (sum - t.latency()).abs() <= 1e-9 * t.latency().max(1e-9),
                    "request {} components sum {} != latency {}",
                    t.req, sum, t.latency()
                );
                for (name, v) in t.components() {
                    prop_assert!(v >= 0.0, "negative {} on request {}", name, t.req);
                }
            }
        }
        prop_assert_eq!(&ta.request_traces, &tb.request_traces);
    }
}

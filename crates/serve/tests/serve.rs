//! End-to-end serving tests: bit-identity to one-shot runs, overload
//! shedding, counter conservation, executor invariance, and real-time
//! serving across trace gaps longer than the receive timeout.

use std::time::Duration;

use fx_apps::airshed::AirshedConfig;
use fx_apps::ffthist::{reference_histogram, FftHistConfig, FftHistMapping};
use fx_core::{spmd, Machine, MachineModel};
use fx_runtime::Executor;
use fx_serve::{
    poisson_trace, AirshedServable, FftHistServable, ServeConfig, Server, ShedPolicy, TenantSpec,
};

fn paragon(p: usize) -> Machine {
    Machine::simulated(p, MachineModel::paragon())
}

#[test]
fn served_outputs_are_bit_identical_to_reference_for_every_mapping() {
    let cfg = FftHistConfig::new(16, 1);
    let tenants = [TenantSpec::new("gold", 50.0, 6), TenantSpec::new("bronze", 20.0, 3)];
    let trace = poisson_trace(&tenants, 11);
    for mapping in [
        FftHistMapping::DataParallel,
        FftHistMapping::Pipeline([1, 4, 1]),
        FftHistMapping::Replicated { replicas: 2, pipeline: None },
    ] {
        let server = Server::new(paragon(6), FftHistServable { cfg, mapping })
            .with_config(ServeConfig { queue_cap: 32, batch_max: 3, shed: ShedPolicy::DropNewest });
        let rep = server.serve(&trace, &["gold", "bronze"]);
        assert!(rep.conserved(), "counter conservation under {mapping:?}");
        assert_eq!(rep.completed(), trace.len(), "ample queue sheds nothing");
        for c in &rep.completions {
            assert_eq!(
                c.output,
                reference_histogram(&cfg, trace[c.req].dataset),
                "request {} output must be bit-identical to the one-shot reference",
                c.req
            );
            assert!(c.done >= trace[c.req].arrival, "completion after arrival");
        }
        let gold = rep.tenant("gold").unwrap();
        assert_eq!(gold.arrived, 6);
        assert!(gold.p50_ns > 0 && gold.p99_ns >= gold.p50_ns && gold.p999_ns >= gold.p99_ns);
    }
}

#[test]
fn serving_is_bit_identical_across_executors() {
    let cfg = FftHistConfig::new(16, 1);
    let trace = poisson_trace(&[TenantSpec::new("t", 80.0, 8)], 5);
    let serve_with = |exec: Executor| {
        let server = Server::new(
            paragon(6).with_executor(exec),
            FftHistServable { cfg, mapping: FftHistMapping::Pipeline([1, 4, 1]) },
        )
        .with_config(ServeConfig { queue_cap: 8, batch_max: 2, shed: ShedPolicy::DropNewest });
        server.serve(&trace, &["t"])
    };
    let a = serve_with(Executor::Threaded);
    let b = serve_with(Executor::Pooled { workers: 3 });
    assert_eq!(a.times, b.times, "virtual finish times must not depend on the executor");
    assert_eq!(a.completions.len(), b.completions.len());
    for (x, y) in a.completions.iter().zip(&b.completions) {
        assert_eq!(x.req, y.req);
        assert_eq!(x.output, y.output);
        assert_eq!(x.done.to_bits(), y.done.to_bits(), "completion vtimes bit-identical");
    }
    assert_eq!(a.tenants, b.tenants, "SLO accounting must match across executors");
}

#[test]
fn overload_sheds_and_conserves() {
    let cfg = FftHistConfig::new(16, 1);
    // 2000 req/s offered against a pipeline that takes milliseconds per
    // request: the queue must overflow.
    let trace = poisson_trace(&[TenantSpec::new("burst", 2000.0, 40)], 9);
    let server =
        Server::new(paragon(4), FftHistServable { cfg, mapping: FftHistMapping::DataParallel })
            .with_config(ServeConfig { queue_cap: 4, batch_max: 2, shed: ShedPolicy::DropNewest });
    let rep = server.serve(&trace, &["burst"]);
    let t = rep.tenant("burst").unwrap();
    assert_eq!(t.arrived, 40);
    assert!(t.shed > 0, "overload must shed (shed={})", t.shed);
    assert!(rep.conserved(), "arrived == completed + shed");
    assert_eq!(rep.completed() + rep.shed.len(), trace.len());
    // Every served answer is still exact under overload.
    for c in &rep.completions {
        assert_eq!(c.output, reference_histogram(&cfg, trace[c.req].dataset));
    }
    // Tail drop: shed requests arrived while the queue was full, so the
    // first queue_cap + batch_max arrivals are never shed.
    let earliest_shed = rep.shed.iter().copied().min().unwrap();
    assert!(earliest_shed >= 4, "tail drop sheds late arrivals, not early ones");
}

#[test]
fn drop_oldest_sheds_earlier_requests_than_drop_newest() {
    let cfg = FftHistConfig::new(16, 1);
    let trace = poisson_trace(&[TenantSpec::new("burst", 2000.0, 40)], 9);
    let run = |shed| {
        Server::new(paragon(4), FftHistServable { cfg, mapping: FftHistMapping::DataParallel })
            .with_config(ServeConfig { queue_cap: 4, batch_max: 2, shed })
            .serve(&trace, &["burst"])
    };
    let newest = run(ShedPolicy::DropNewest);
    let oldest = run(ShedPolicy::DropOldest);
    assert!(newest.conserved() && oldest.conserved());
    assert!(!newest.shed.is_empty() && !oldest.shed.is_empty());
    let mean = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len() as f64;
    assert!(
        mean(&oldest.shed) < mean(&newest.shed),
        "drop-oldest victims should be older on average: {:?} vs {:?}",
        oldest.shed,
        newest.shed
    );
    // Shed choice redistributes which requests get served, never what
    // any served request answers.
    for rep in [&newest, &oldest] {
        for c in &rep.completions {
            assert_eq!(c.output, reference_histogram(&cfg, trace[c.req].dataset));
        }
    }
}

#[test]
fn airshed_service_answers_match_oneshot() {
    let cfg = AirshedConfig {
        gridpoints: 24,
        layers: 2,
        species: 3,
        hours: 2,
        nsteps: 2,
        input_seconds: 0.05,
        output_seconds: 0.05,
        chem_flops_per_cell: 400.0,
        trans_flops_per_cell: 60.0,
    };
    let oneshot = spmd(&paragon(4), |cx| fx_apps::airshed::airshed_dp(cx, &cfg)).results[0];
    let trace = poisson_trace(&[TenantSpec::new("ops", 5.0, 3)], 21);
    let server = Server::new(paragon(4), AirshedServable { cfg, task_parallel: false })
        .with_config(ServeConfig::default());
    let rep = server.serve(&trace, &["ops"]);
    assert_eq!(rep.completed(), 3);
    for c in &rep.completions {
        assert_eq!(
            c.output.to_bits(),
            oneshot.to_bits(),
            "served checksum must be bit-identical to the one-shot run"
        );
    }
    assert!(rep.conserved());
}

#[test]
fn real_time_serving_survives_trace_gaps_longer_than_recv_timeout() {
    // A quiet serving loop is not a deadlock: the trace has a 400ms gap,
    // four times the receive timeout. Idle declaration keeps the
    // watchdog silent; the run completes and answers stay exact.
    let cfg = FftHistConfig::new(8, 1);
    let trace = {
        let mut t = poisson_trace(&[TenantSpec::new("live", 1000.0, 4)], 3);
        for r in t.iter_mut().skip(2) {
            r.arrival += 0.4; // open a gap after the first two requests
        }
        t
    };
    let machine = Machine::real(2).with_timeout(Duration::from_millis(100));
    let server =
        Server::new(machine, FftHistServable { cfg, mapping: FftHistMapping::DataParallel })
            .with_config(ServeConfig { queue_cap: 8, batch_max: 2, shed: ShedPolicy::DropNewest });
    let rep = server.serve(&trace, &["live"]);
    assert_eq!(rep.completed(), 4, "every request served across the gap");
    assert!(rep.conserved());
    for c in &rep.completions {
        assert_eq!(c.output, reference_histogram(&cfg, trace[c.req].dataset));
        assert!(c.done >= trace[c.req].arrival - 1e-3, "wall-clock completion after arrival");
    }
    let t = rep.tenant("live").unwrap();
    assert!(t.p50_ns > 0, "real-mode latencies recorded");
}

#[test]
fn traced_serve_decomposes_latency_exactly_and_is_vtime_free() {
    let cfg = FftHistConfig::new(16, 1);
    let tenants = [TenantSpec::new("gold", 50.0, 6), TenantSpec::new("bronze", 20.0, 3)];
    let trace = poisson_trace(&tenants, 11);
    let run = |tracing: bool| {
        Server::new(
            paragon(6).with_tracing(tracing),
            FftHistServable { cfg, mapping: FftHistMapping::Pipeline([1, 4, 1]) },
        )
        .with_config(ServeConfig { queue_cap: 32, batch_max: 3, shed: ShedPolicy::DropNewest })
        .serve(&trace, &["gold", "bronze"])
    };
    let traced = run(true);
    let plain = run(false);

    // Tracing must be free on the virtual clock: finish and completion
    // times bit-identical with tracing on and off.
    assert_eq!(traced.times, plain.times, "tracing must not move the virtual clock");
    assert_eq!(traced.completions.len(), plain.completions.len());
    for (x, y) in traced.completions.iter().zip(&plain.completions) {
        assert_eq!(x.req, y.req);
        assert_eq!(x.done.to_bits(), y.done.to_bits(), "completion vtimes bit-identical");
    }
    assert!(plain.request_traces.is_empty(), "untraced runs carry no request traces");

    // One decomposition per completion, each summing exactly to its
    // end-to-end latency (closed accounting: nothing unattributed).
    assert_eq!(traced.request_traces.len(), traced.completions.len());
    for t in &traced.request_traces {
        assert!(t.trace_id != 0 && t.queue_wait() >= 0.0 && t.done >= t.dispatch);
        let sum: f64 = t.components().iter().map(|(_, v)| *v).sum();
        assert!(
            (sum - t.latency()).abs() <= 1e-9 * t.latency().max(1e-9),
            "components must sum to latency for request {}: {} vs {}",
            t.req,
            sum,
            t.latency()
        );
        for (name, v) in t.components() {
            assert!(v >= 0.0, "negative {name} component on request {}", t.req);
        }
    }

    // The aggregate view: 7 components + latency, component means
    // summing to the latency mean.
    let rows = traced.request_breakdown();
    assert_eq!(rows.len(), 8);
    let comp_mean: f64 = rows[..7].iter().map(|r| r.mean).sum();
    assert!((comp_mean - rows[7].mean).abs() <= 1e-9 * rows[7].mean.max(1e-9));
    assert!(plain.request_breakdown().is_empty());

    // Per-request Chrome export: spans of this request plus send→recv
    // flow arrows ("s"/"f" phase events).
    let some_req = traced.request_traces[0].req;
    let json = traced.request_trace_json(some_req).expect("traced request exports JSON");
    assert!(json.contains("\"ph\":\"X\""), "per-request trace has span events");
    assert!(
        json.contains("\"ph\":\"s\"") && json.contains("\"ph\":\"f\""),
        "pipeline request trace must carry flow events: {json}"
    );
    assert!(plain.request_trace_json(some_req).is_none());
}

#[test]
fn traced_serve_feeds_exemplars_and_trace_endpoints() {
    let cfg = FftHistConfig::new(16, 1);
    let trace = poisson_trace(&[TenantSpec::new("gold", 60.0, 5)], 7);
    let tele = std::sync::Arc::new(fx_runtime::Telemetry::new());
    let server = Server::new(
        paragon(4).with_telemetry(tele.clone()).with_tracing(true),
        FftHistServable { cfg, mapping: FftHistMapping::DataParallel },
    );
    let rep = server.serve(&trace, &["gold"]);
    assert_eq!(rep.completed(), 5);

    // Latency buckets carry the trace id of their most recent sample.
    let om = tele.render_openmetrics();
    assert!(
        om.contains("# {trace_id=\""),
        "traced serve must attach OpenMetrics exemplars:\n{om}"
    );

    // The slowest-request ring retains renderable per-request traces,
    // slowest first, and each is the same JSON the report exports.
    let ring = tele.exemplar_traces();
    assert!(!ring.is_empty(), "traced serve must retain exemplar traces");
    for w in ring.windows(2) {
        assert!(w[0].latency_ns >= w[1].latency_ns, "ring is sorted slowest-first");
    }
    let slowest = &ring[0];
    let by_report: Option<&fx_serve::RequestTrace> =
        rep.request_traces.iter().find(|t| t.trace_id == slowest.trace_id);
    let t = by_report.expect("ring entries correspond to reported requests");
    assert_eq!(slowest.latency_ns, (t.latency().max(0.0) * 1e9).round() as u64);
    assert!(slowest.json.contains("\"ph\":\"X\""));
    assert_eq!(tele.exemplar_trace(slowest.trace_id).map(|e| e.json), Some(slowest.json.clone()));
}

#[test]
fn exporters_render_per_tenant_serve_metrics() {
    let cfg = FftHistConfig::new(16, 1);
    let trace =
        poisson_trace(&[TenantSpec::new("gold", 60.0, 4), TenantSpec::new("free", 20.0, 2)], 13);
    let tele = std::sync::Arc::new(fx_runtime::Telemetry::new());
    let server = Server::new(
        paragon(4).with_telemetry(tele.clone()),
        FftHistServable { cfg, mapping: FftHistMapping::DataParallel },
    );
    let rep = server.serve(&trace, &["gold", "free"]);
    assert!(rep.telemetry.is_some(), "serve always snapshots telemetry");
    let om = tele.render_openmetrics();
    for needle in [
        "fx_serve_requests_total{tenant=\"gold\",outcome=\"arrived\"} 4",
        "fx_serve_requests_total{tenant=\"free\",outcome=\"completed\"} 2",
        "fx_serve_latency_ns",
        "# EOF",
    ] {
        assert!(om.contains(needle), "OpenMetrics output missing {needle:?}:\n{om}");
    }
    let json = tele.render_json();
    assert!(json.contains("\"tenants\":["), "JSON exporter lists tenants: {json}");
    assert!(json.contains("\"latency_p99_ns\""), "JSON exporter carries SLO quantiles");
}

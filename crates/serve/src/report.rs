//! Assembling a serve run's scattered observations into one report.

use fx_apps::util::ReqCompletion;
use fx_core::{RunReport, WindowBreakdown};
use fx_runtime::{chrome_trace_request_json, SpanLog, Telemetry, TelemetrySnapshot};

use crate::server::ProcServe;
use crate::ServeRequest;

/// Exact latency decomposition of one served request, recorded by its
/// canonical reporting processor.
///
/// The components partition the request's end-to-end latency on the
/// reporter's virtual clock: `queue_wait` covers `[arrival, dispatch]`
/// (admission queue), and `breakdown` decomposes `[dispatch, done]`
/// (service) into barrier / send / recv / compute / batch-mate ("other")
/// / idle. By construction `queue_wait + breakdown.total() == latency()`
/// exactly — the same closed accounting discipline as the span profiler.
/// Batch formation is instantaneous in virtual time (admission decisions
/// don't move the clock), so it carries no component of its own; time
/// spent on batch-mates while this request's clock ran shows up in
/// `breakdown.other`.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// Trace position of the request.
    pub req: usize,
    /// Tenant index of the request.
    pub tenant: usize,
    /// Causal trace id the request's spans carry
    /// ([`fx_core::request_trace_id`] of `req`).
    pub trace_id: u64,
    /// Arrival time (virtual seconds).
    pub arrival: f64,
    /// Dispatch time: when the batch containing this request left the
    /// admission queue.
    pub dispatch: f64,
    /// Completion time on the reporting processor.
    pub done: f64,
    /// Serve-loop round that dispatched the request.
    pub round: u64,
    /// Number of requests in the dispatched batch.
    pub batch_size: usize,
    /// Decomposition of the service window `[dispatch, done]` on the
    /// reporting processor's clock, in virtual seconds.
    pub breakdown: WindowBreakdown,
}

impl RequestTrace {
    /// Time spent in the admission queue (virtual seconds).
    pub fn queue_wait(&self) -> f64 {
        self.dispatch - self.arrival
    }

    /// End-to-end latency (virtual seconds).
    pub fn latency(&self) -> f64 {
        self.done - self.arrival
    }

    /// The seven named components in reporting order:
    /// `(name, seconds)`. Sums exactly to [`RequestTrace::latency`].
    pub fn components(&self) -> [(&'static str, f64); 7] {
        [
            ("queue", self.queue_wait()),
            ("barrier", self.breakdown.barrier),
            ("send", self.breakdown.send),
            ("recv", self.breakdown.recv),
            ("compute", self.breakdown.compute),
            ("other", self.breakdown.other),
            ("idle", self.breakdown.idle),
        ]
    }
}

/// Aggregate statistics of one latency component across all traced
/// requests (see [`ServeReport::request_breakdown`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentStats {
    /// Component name (`queue`, `barrier`, `send`, `recv`, `compute`,
    /// `other`, `idle`).
    pub component: &'static str,
    /// Median of the component across requests, virtual seconds.
    pub p50: f64,
    /// 99th percentile of the component across requests.
    pub p99: f64,
    /// Mean of the component across requests.
    pub mean: f64,
}

/// Exact order statistic of `sorted` (ascending): the value at rank
/// `ceil(q*n)`, the convention histogram quantiles approximate.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One tenant's service-level accounting for a serve run.
///
/// Latency quantiles come from the runtime's log-bucketed telemetry
/// histograms, so they carry that histogram's documented bound: the
/// estimate is within a factor of two of the exact order statistic.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Requests that arrived (admitted + shed under tail drop).
    pub arrived: u64,
    /// Requests accepted into the admission queue.
    pub admitted: u64,
    /// Requests dropped by the shedding policy.
    pub shed: u64,
    /// Requests fully served.
    pub completed: u64,
    /// Median completion latency, virtual nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile completion latency, virtual nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile completion latency, virtual nanoseconds.
    pub p999_ns: u64,
    /// Mean completion latency, virtual nanoseconds.
    pub mean_ns: f64,
}

impl TenantReport {
    /// Counter conservation: every arrived request was either served
    /// or shed, nothing lost, nothing double-counted.
    pub fn conserved(&self) -> bool {
        self.arrived == self.completed + self.shed
    }
}

/// Everything a serve run produced.
#[derive(Debug, Clone)]
pub struct ServeReport<T> {
    /// All completions, merged across processors and sorted by request
    /// index. Each served request appears exactly once.
    pub completions: Vec<ReqCompletion<T>>,
    /// Trace indices of shed requests, in shed order.
    pub shed: Vec<usize>,
    /// Per-tenant SLO accounting.
    pub tenants: Vec<TenantReport>,
    /// Per-processor finish times (virtual seconds when simulating).
    pub times: Vec<f64>,
    /// Serve-loop rounds (max over processors).
    pub rounds: u64,
    /// Full telemetry snapshot of the run, for the OpenMetrics/JSON
    /// exporters — includes the per-tenant request counters and
    /// latency histograms rendered as `fx_serve_*` families.
    pub telemetry: Option<TelemetrySnapshot>,
    /// Per-request latency decompositions, sorted by request index.
    /// Populated only when the machine ran with tracing on under
    /// simulated time (profiling is enabled automatically then); one
    /// entry per completion.
    pub request_traces: Vec<RequestTrace>,
    /// Per-processor span logs of the serve run (empty unless
    /// profiled), retained so per-request Chrome traces can be
    /// exported after the fact.
    pub spans: Vec<SpanLog>,
}

impl<T> ServeReport<T> {
    /// Number of requests served.
    pub fn completed(&self) -> usize {
        self.completions.len()
    }

    /// Latest processor finish time (virtual seconds when simulating).
    pub fn makespan(&self) -> f64 {
        self.times.iter().copied().fold(0.0, f64::max)
    }

    /// Served requests per second of makespan.
    pub fn throughput(&self) -> f64 {
        let m = self.makespan();
        if m > 0.0 {
            self.completed() as f64 / m
        } else {
            0.0
        }
    }

    /// Look up a tenant's report by name.
    pub fn tenant(&self, name: &str) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.name == name)
    }

    /// Aggregate p50/p99/mean of each latency component across all
    /// traced requests, in component order (`queue`, `barrier`, `send`,
    /// `recv`, `compute`, `other`, `idle`) followed by a synthetic
    /// `latency` row. Empty when the run was not traced. Because each
    /// request's components sum exactly to its latency, the component
    /// means sum exactly to the latency mean.
    pub fn request_breakdown(&self) -> Vec<ComponentStats> {
        if self.request_traces.is_empty() {
            return Vec::new();
        }
        let names = ["queue", "barrier", "send", "recv", "compute", "other", "idle", "latency"];
        names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let mut vals: Vec<f64> = self
                    .request_traces
                    .iter()
                    .map(|t| if i < 7 { t.components()[i].1 } else { t.latency() })
                    .collect();
                vals.sort_by(|a, b| a.total_cmp(b));
                let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                ComponentStats {
                    component: name,
                    p50: percentile(&vals, 0.50),
                    p99: percentile(&vals, 0.99),
                    mean,
                }
            })
            .collect()
    }

    /// The latency decomposition of one request, if it was traced.
    pub fn request_trace(&self, req: usize) -> Option<&RequestTrace> {
        self.request_traces.iter().find(|t| t.req == req)
    }

    /// Per-request Chrome-trace JSON (spans of this request across all
    /// processor lanes, with send→recv flow arrows). `None` when the
    /// request was not traced or span logs were not retained.
    pub fn request_trace_json(&self, req: usize) -> Option<String> {
        let t = self.request_trace(req)?;
        if self.spans.iter().all(|l| l.is_empty()) {
            return None;
        }
        Some(chrome_trace_request_json(&self.spans, t.trace_id))
    }

    /// Counter conservation across all tenants (see
    /// [`TenantReport::conserved`]); also checks the merged completion
    /// and shed lists against the counter totals.
    pub fn conserved(&self) -> bool {
        let completed: u64 = self.tenants.iter().map(|t| t.completed).sum();
        let shed: u64 = self.tenants.iter().map(|t| t.shed).sum();
        self.tenants.iter().all(TenantReport::conserved)
            && completed == self.completions.len() as u64
            && shed == self.shed.len() as u64
    }
}

/// Merge per-processor serve results and the live tenant counters into
/// one [`ServeReport`]. Panics if any request was reported complete by
/// more than one processor — the canonical-reporter contract.
pub(crate) fn assemble<T>(
    rep: RunReport<ProcServe<T>>,
    trace: &[ServeRequest],
    tenant_names: &[&str],
    telemetry: &Telemetry,
) -> ServeReport<T> {
    let rounds = rep.results.iter().map(|p| p.rounds).max().unwrap_or(0);
    let mut completions: Vec<ReqCompletion<T>> = Vec::new();
    let mut shed: Vec<usize> = Vec::new();
    let mut request_traces: Vec<RequestTrace> = Vec::new();
    for proc in rep.results {
        completions.extend(proc.completions);
        shed.extend(proc.sheds);
        request_traces.extend(proc.traces);
    }
    request_traces.sort_by_key(|t| t.req);
    completions.sort_by_key(|c| c.req);
    for w in completions.windows(2) {
        assert_ne!(
            w[0].req, w[1].req,
            "request {} reported complete by more than one processor",
            w[0].req
        );
    }
    for c in &completions {
        assert!(c.req < trace.len(), "completion for unknown request {}", c.req);
    }

    let by_name = telemetry.tenants();
    let tenants = tenant_names
        .iter()
        .map(|name| {
            let t = by_name
                .iter()
                .find(|t| t.name() == *name)
                .expect("serve registered every tenant name");
            let totals = t.totals();
            let h = &totals.latency_ns;
            TenantReport {
                name: totals.name.clone(),
                arrived: totals.arrived,
                admitted: totals.admitted,
                shed: totals.shed,
                completed: totals.completed,
                p50_ns: h.quantile(0.50),
                p99_ns: h.quantile(0.99),
                p999_ns: h.quantile(0.999),
                mean_ns: h.mean(),
            }
        })
        .collect();

    ServeReport {
        completions,
        shed,
        tenants,
        times: rep.times,
        rounds,
        telemetry: rep.telemetry,
        request_traces,
        spans: rep.spans,
    }
}

//! Assembling a serve run's scattered observations into one report.

use fx_apps::util::ReqCompletion;
use fx_core::RunReport;
use fx_runtime::{Telemetry, TelemetrySnapshot};

use crate::server::ProcServe;
use crate::ServeRequest;

/// One tenant's service-level accounting for a serve run.
///
/// Latency quantiles come from the runtime's log-bucketed telemetry
/// histograms, so they carry that histogram's documented bound: the
/// estimate is within a factor of two of the exact order statistic.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Requests that arrived (admitted + shed under tail drop).
    pub arrived: u64,
    /// Requests accepted into the admission queue.
    pub admitted: u64,
    /// Requests dropped by the shedding policy.
    pub shed: u64,
    /// Requests fully served.
    pub completed: u64,
    /// Median completion latency, virtual nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile completion latency, virtual nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile completion latency, virtual nanoseconds.
    pub p999_ns: u64,
    /// Mean completion latency, virtual nanoseconds.
    pub mean_ns: f64,
}

impl TenantReport {
    /// Counter conservation: every arrived request was either served
    /// or shed, nothing lost, nothing double-counted.
    pub fn conserved(&self) -> bool {
        self.arrived == self.completed + self.shed
    }
}

/// Everything a serve run produced.
#[derive(Debug, Clone)]
pub struct ServeReport<T> {
    /// All completions, merged across processors and sorted by request
    /// index. Each served request appears exactly once.
    pub completions: Vec<ReqCompletion<T>>,
    /// Trace indices of shed requests, in shed order.
    pub shed: Vec<usize>,
    /// Per-tenant SLO accounting.
    pub tenants: Vec<TenantReport>,
    /// Per-processor finish times (virtual seconds when simulating).
    pub times: Vec<f64>,
    /// Serve-loop rounds (max over processors).
    pub rounds: u64,
    /// Full telemetry snapshot of the run, for the OpenMetrics/JSON
    /// exporters — includes the per-tenant request counters and
    /// latency histograms rendered as `fx_serve_*` families.
    pub telemetry: Option<TelemetrySnapshot>,
}

impl<T> ServeReport<T> {
    /// Number of requests served.
    pub fn completed(&self) -> usize {
        self.completions.len()
    }

    /// Latest processor finish time (virtual seconds when simulating).
    pub fn makespan(&self) -> f64 {
        self.times.iter().copied().fold(0.0, f64::max)
    }

    /// Served requests per second of makespan.
    pub fn throughput(&self) -> f64 {
        let m = self.makespan();
        if m > 0.0 {
            self.completed() as f64 / m
        } else {
            0.0
        }
    }

    /// Look up a tenant's report by name.
    pub fn tenant(&self, name: &str) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.name == name)
    }

    /// Counter conservation across all tenants (see
    /// [`TenantReport::conserved`]); also checks the merged completion
    /// and shed lists against the counter totals.
    pub fn conserved(&self) -> bool {
        let completed: u64 = self.tenants.iter().map(|t| t.completed).sum();
        let shed: u64 = self.tenants.iter().map(|t| t.shed).sum();
        self.tenants.iter().all(TenantReport::conserved)
            && completed == self.completions.len() as u64
            && shed == self.shed.len() as u64
    }
}

/// Merge per-processor serve results and the live tenant counters into
/// one [`ServeReport`]. Panics if any request was reported complete by
/// more than one processor — the canonical-reporter contract.
pub(crate) fn assemble<T>(
    rep: RunReport<ProcServe<T>>,
    trace: &[ServeRequest],
    tenant_names: &[&str],
    telemetry: &Telemetry,
) -> ServeReport<T> {
    let rounds = rep.results.iter().map(|p| p.rounds).max().unwrap_or(0);
    let mut completions: Vec<ReqCompletion<T>> = Vec::new();
    let mut shed: Vec<usize> = Vec::new();
    for proc in rep.results {
        completions.extend(proc.completions);
        shed.extend(proc.sheds);
    }
    completions.sort_by_key(|c| c.req);
    for w in completions.windows(2) {
        assert_ne!(
            w[0].req, w[1].req,
            "request {} reported complete by more than one processor",
            w[0].req
        );
    }
    for c in &completions {
        assert!(c.req < trace.len(), "completion for unknown request {}", c.req);
    }

    let by_name = telemetry.tenants();
    let tenants = tenant_names
        .iter()
        .map(|name| {
            let t = by_name
                .iter()
                .find(|t| t.name() == *name)
                .expect("serve registered every tenant name");
            let totals = t.totals();
            let h = &totals.latency_ns;
            TenantReport {
                name: totals.name.clone(),
                arrived: totals.arrived,
                admitted: totals.admitted,
                shed: totals.shed,
                completed: totals.completed,
                p50_ns: h.quantile(0.50),
                p99_ns: h.quantile(0.99),
                p999_ns: h.quantile(0.999),
                mean_ns: h.mean(),
            }
        })
        .collect();

    ServeReport { completions, shed, tenants, times: rep.times, rounds, telemetry: rep.telemetry }
}

//! The compiled pipelines a [`Server`](crate::Server) can wrap.
//!
//! A `Servable` is the serving-side view of an Fx program: given a
//! batch of admitted requests, run them through the mapped pipeline
//! and return one completion per request, reported by the canonical
//! completing processor (the lowest-ranked member of the group that
//! produces the result). Implementations must be pure in the serving
//! sense — the output for a request depends only on its dataset, never
//! on batch composition, mapping or timing.

use crate::ServeRequest;
use fx_apps::airshed::{airshed_requests, AirshedConfig};
use fx_apps::ffthist::{fft_hist_requests, FftHistConfig, FftHistMapping};
use fx_apps::util::ReqCompletion;
use fx_core::Cx;

/// A compiled pipeline that can serve batches of requests.
pub trait Servable: Send + Sync {
    /// Per-request output type. `PartialEq + Debug` so bit-identity to
    /// the one-shot run can be asserted.
    type Output: Clone + Send + PartialEq + std::fmt::Debug + 'static;

    /// Run one admitted batch through the pipeline. Called with the
    /// whole machine's `Cx` on every processor (SPMD); returns the
    /// completions this processor is the canonical reporter for —
    /// exactly one processor reports each request.
    fn run_batch(&self, cx: &mut Cx, batch: &[ServeRequest]) -> Vec<ReqCompletion<Self::Output>>;
}

/// FFT-Hist (Figure 4/5) as a service: each request 2D-FFTs one
/// deterministic dataset and histograms the magnitudes, under any of
/// the paper's mappings (data-parallel, pipeline, replicated).
#[derive(Debug, Clone, Copy)]
pub struct FftHistServable {
    /// Problem shape.
    pub cfg: FftHistConfig,
    /// Processor mapping (the axis Table 1 and Figure 5 explore).
    pub mapping: FftHistMapping,
}

impl Servable for FftHistServable {
    type Output = Vec<u64>;

    fn run_batch(&self, cx: &mut Cx, batch: &[ServeRequest]) -> Vec<ReqCompletion<Vec<u64>>> {
        let reqs: Vec<(usize, usize)> = batch.iter().map(|r| (r.idx, r.dataset)).collect();
        fft_hist_requests(cx, &self.cfg, self.mapping, &reqs)
    }
}

/// Airshed (§5) as a service: each request runs one full simulation
/// and answers its concentration checksum. The dataset index is
/// ignored — every Airshed request runs the configured scenario — but
/// requests still differ by id, so completions stay distinguishable.
#[derive(Debug, Clone, Copy)]
pub struct AirshedServable {
    /// Problem shape.
    pub cfg: AirshedConfig,
    /// `true` for the task-parallel input/main/output mapping,
    /// `false` for pure data parallelism.
    pub task_parallel: bool,
}

impl Servable for AirshedServable {
    type Output = f64;

    fn run_batch(&self, cx: &mut Cx, batch: &[ServeRequest]) -> Vec<ReqCompletion<f64>> {
        let reqs: Vec<usize> = batch.iter().map(|r| r.idx).collect();
        airshed_requests(cx, &self.cfg, self.task_parallel, &reqs)
    }
}

#![warn(missing_docs)]

//! # fx-serve — Fx as a service
//!
//! The paper's programs are batch jobs: compile a task/data-parallel
//! mapping, push a fixed stream of data sets through it, report
//! throughput and latency (Table 1). This crate wraps the same compiled
//! pipelines in a **long-lived cluster object**: requests arrive on an
//! open-loop (Poisson or trace-driven) schedule, are admitted into a
//! bounded queue or shed under overload, batched through the pipeline,
//! and answered with per-tenant latency SLO accounting (p50/p99/p999)
//! read from the runtime's telemetry histograms.
//!
//! The load-bearing invariant: **serving changes scheduling, never
//! answers.** Every request's output is bit-identical to the same
//! computation run one-shot, whatever the offered load, batch size,
//! queue depth, shed policy, executor, or mapping. Batching and
//! queueing reorder *when* work happens, not *what* it computes.
//!
//! ## Determinism under simulated time
//!
//! Under [`TimeMode::Simulated`](fx_core::TimeMode) the admission loop
//! is a *replicated* decision procedure: every processor runs the same
//! rounds, agreeing on the round time via `allreduce(now, max)` and
//! jumping idle gaps with `advance_to(next_arrival)`. Admission,
//! shedding and batch formation are pure functions of the agreed round
//! time, so every processor makes identical decisions without any
//! coordinator messages — and the whole serve run is bit-identical
//! across executors and hosts, like every other Fx program.
//!
//! Under [`TimeMode::Real`](fx_core::TimeMode), processor 0 acts as the
//! frontend: it watches the wall clock for arrivals and broadcasts
//! batch directives (`Some(batch)`) or shutdown (`None`) to the rest of
//! the machine. Non-frontend processors declare themselves idle
//! (`Cx::set_idle`) while waiting for a directive so the stuck-run
//! watchdog does not mistake a quiet serving loop for a deadlock.
//!
//! ## Knobs
//!
//! [`ServeConfig::from_env`] reads `FX_SERVE_QUEUE` (admission queue
//! capacity), `FX_SERVE_BATCH` (max requests per pipeline batch) and
//! `FX_SERVE_SHED` (`newest` | `oldest`).

mod report;
mod servable;
mod server;
mod trace;

pub use report::{ComponentStats, RequestTrace, ServeReport, TenantReport};
pub use servable::{AirshedServable, FftHistServable, Servable};
pub use server::{ProcServe, Server};
pub use trace::{poisson_trace, ServeRequest, TenantSpec};

/// What to drop when a request arrives and the admission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Shed the arriving request (tail drop). Preserves FIFO latency of
    /// already-admitted work; overload shows up as shed count, not as
    /// inflated tail latency.
    DropNewest,
    /// Shed the oldest queued request to make room for the arrival.
    /// Bounds staleness at the cost of wasted queueing of the victim.
    DropOldest,
}

/// Admission-control knobs for a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bounded admission queue capacity (requests). Arrivals beyond
    /// this are shed per [`ShedPolicy`].
    pub queue_cap: usize,
    /// Maximum requests drained into one pipeline batch.
    pub batch_max: usize,
    /// What to drop when the queue is full.
    pub shed: ShedPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { queue_cap: 16, batch_max: 4, shed: ShedPolicy::DropNewest }
    }
}

impl ServeConfig {
    /// Defaults overridden by `FX_SERVE_QUEUE`, `FX_SERVE_BATCH` and
    /// `FX_SERVE_SHED` (`newest` | `oldest`). Unparsable values fall
    /// back to the defaults; capacities are clamped to at least 1.
    pub fn from_env() -> Self {
        let mut cfg = ServeConfig::default();
        if let Ok(v) = std::env::var("FX_SERVE_QUEUE") {
            if let Ok(n) = v.trim().parse::<usize>() {
                cfg.queue_cap = n.max(1);
            }
        }
        if let Ok(v) = std::env::var("FX_SERVE_BATCH") {
            if let Ok(n) = v.trim().parse::<usize>() {
                cfg.batch_max = n.max(1);
            }
        }
        if let Ok(v) = std::env::var("FX_SERVE_SHED") {
            match v.trim().to_ascii_lowercase().as_str() {
                "oldest" | "drop-oldest" | "dropoldest" => cfg.shed = ShedPolicy::DropOldest,
                "newest" | "drop-newest" | "dropnewest" => cfg.shed = ShedPolicy::DropNewest,
                _ => {}
            }
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = ServeConfig::default();
        assert!(c.queue_cap >= 1 && c.batch_max >= 1);
        assert_eq!(c.shed, ShedPolicy::DropNewest);
    }
}

//! Open-loop arrival traces.
//!
//! An open-loop generator emits requests on its own schedule regardless
//! of whether the server keeps up — the defining property that makes
//! overload visible (a closed loop self-throttles and can never drive
//! the server past its knee). Traces are synthesized deterministically
//! from a seed with the same `unit_hash` used for dataset synthesis, so
//! every processor (and every run) sees the identical trace.

use fx_apps::util::unit_hash;

/// One tenant's offered load: a Poisson stream of `requests` requests
/// at `rate` requests per second (of virtual time when simulating).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name, used for telemetry labels and SLO reporting.
    pub name: String,
    /// Mean arrival rate, requests/second.
    pub rate: f64,
    /// Number of requests this tenant offers.
    pub requests: usize,
}

impl TenantSpec {
    /// Convenience constructor.
    pub fn new(name: &str, rate: f64, requests: usize) -> Self {
        TenantSpec { name: name.to_string(), rate, requests }
    }
}

/// One request in an arrival trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Global trace index (position in arrival order); also the request
    /// id reported in completions.
    pub idx: usize,
    /// Index into the tenant list this request belongs to.
    pub tenant: usize,
    /// Per-tenant sequence number.
    pub seq: usize,
    /// Which dataset the request asks the pipeline to process.
    pub dataset: usize,
    /// Arrival time, seconds from serve start.
    pub arrival: f64,
}

/// Deterministic Poisson arrival trace for a set of tenants, merged
/// into one stream sorted by arrival time.
///
/// Inter-arrival gaps are exponential via inverse-CDF
/// (`dt = -ln(1 - u) / rate`) over `unit_hash` draws, so the trace is a
/// pure function of `(tenants, seed)` — identical on every processor
/// and every host, which the replicated simulated-time admission loop
/// depends on. Ties (exactly equal arrivals) are broken by
/// `(tenant, seq)` so the merge order is total.
pub fn poisson_trace(tenants: &[TenantSpec], seed: u64) -> Vec<ServeRequest> {
    let mut all: Vec<ServeRequest> = Vec::new();
    for (t, spec) in tenants.iter().enumerate() {
        assert!(spec.rate > 0.0, "tenant {} has non-positive rate", spec.name);
        let mut at = 0.0f64;
        for seq in 0..spec.requests {
            let u = unit_hash(seed, t as u64, seq as u64).clamp(1e-12, 1.0 - 1e-12);
            at += -(1.0 - u).ln() / spec.rate;
            let dataset = (unit_hash(seed ^ 0x0DA7_A5E7, t as u64, seq as u64) * 64.0) as usize;
            all.push(ServeRequest { idx: 0, tenant: t, seq, dataset, arrival: at });
        }
    }
    all.sort_by(|a, b| {
        a.arrival
            .partial_cmp(&b.arrival)
            .expect("arrival times are finite")
            .then(a.tenant.cmp(&b.tenant))
            .then(a.seq.cmp(&b.seq))
    });
    for (i, r) in all.iter_mut().enumerate() {
        r.idx = i;
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_sorted_and_complete() {
        let tenants =
            vec![TenantSpec::new("gold", 40.0, 25), TenantSpec::new("bronze", 10.0, 10)];
        let a = poisson_trace(&tenants, 7);
        let b = poisson_trace(&tenants, 7);
        assert_eq!(a, b, "same seed must give the identical trace");
        assert_eq!(a.len(), 35);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival), "sorted by arrival");
        assert!(a.iter().enumerate().all(|(i, r)| r.idx == i), "idx is trace position");
        assert_eq!(a.iter().filter(|r| r.tenant == 0).count(), 25);
        assert_eq!(a.iter().filter(|r| r.tenant == 1).count(), 10);
        // Per-tenant seq order must survive the merge.
        let seqs: Vec<usize> = a.iter().filter(|r| r.tenant == 1).map(|r| r.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn rate_controls_density() {
        let fast = poisson_trace(&[TenantSpec::new("f", 100.0, 200)], 3);
        let slow = poisson_trace(&[TenantSpec::new("s", 10.0, 200)], 3);
        let span_fast = fast.last().unwrap().arrival;
        let span_slow = slow.last().unwrap().arrival;
        // 10x the rate should compress the span by roughly 10x.
        assert!(
            span_slow / span_fast > 5.0,
            "expected much denser arrivals at higher rate: {span_fast} vs {span_slow}"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = poisson_trace(&[TenantSpec::new("t", 50.0, 50)], 1);
        let b = poisson_trace(&[TenantSpec::new("t", 50.0, 50)], 2);
        assert_ne!(a, b);
    }
}

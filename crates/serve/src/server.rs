//! The long-lived cluster object: admission, batching, shedding.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use fx_core::{request_trace_id, spmd, Cx, Machine};
use fx_runtime::{Telemetry, TenantStats};

use crate::report::{assemble, RequestTrace, ServeReport};
use crate::{Servable, ServeConfig, ServeRequest, ShedPolicy};

/// What one processor brings back from a serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcServe<T> {
    /// Completions this processor was the canonical reporter for.
    pub completions: Vec<fx_apps::util::ReqCompletion<T>>,
    /// Trace indices shed by admission control (processor 0 only, so
    /// the merged list counts each shed request exactly once).
    pub sheds: Vec<usize>,
    /// Serve-loop rounds this processor executed.
    pub rounds: u64,
    /// Per-request latency decompositions for the completions above
    /// (empty unless the run was traced).
    pub traces: Vec<RequestTrace>,
}

/// A long-lived cluster object wrapping a compiled pipeline.
///
/// `Server` owns a [`Machine`] and a [`Servable`]; [`Server::serve`]
/// pushes an open-loop arrival trace through the pipeline under
/// admission control and returns per-request completions plus
/// per-tenant SLO accounting. See the crate docs for the two serving
/// modes (replicated rounds under simulated time, rank-0 frontend
/// under real time).
pub struct Server<S: Servable> {
    machine: Machine,
    servable: S,
    cfg: ServeConfig,
}

impl<S: Servable> Server<S> {
    /// A server on `machine` wrapping `servable`, configured from the
    /// environment ([`ServeConfig::from_env`]).
    pub fn new(machine: Machine, servable: S) -> Self {
        Server { machine, servable, cfg: ServeConfig::from_env() }
    }

    /// Replace the admission-control configuration.
    pub fn with_config(mut self, cfg: ServeConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The active admission-control configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Serve the whole trace to completion (or shedding) and report.
    ///
    /// `tenant_names[t]` labels tenant index `t`; every request's
    /// `tenant` must index into it, and requests must be sorted by
    /// arrival with `idx` equal to trace position (what
    /// [`poisson_trace`](crate::poisson_trace) produces).
    pub fn serve(&self, trace: &[ServeRequest], tenant_names: &[&str]) -> ServeReport<S::Output> {
        assert!(self.cfg.queue_cap >= 1, "admission queue needs capacity >= 1");
        assert!(self.cfg.batch_max >= 1, "batches need at least one request");
        for (i, r) in trace.iter().enumerate() {
            assert_eq!(r.idx, i, "trace idx must equal trace position");
            assert!(r.tenant < tenant_names.len(), "request tenant out of range");
            assert!(i == 0 || trace[i - 1].arrival <= r.arrival, "trace must be arrival-sorted");
        }

        let telemetry =
            self.machine.telemetry.clone().unwrap_or_else(|| Arc::new(Telemetry::new()));
        let tenants = telemetry.begin_tenants(tenant_names);
        let mut machine = self.machine.clone().with_telemetry(telemetry.clone());
        let sim = machine.mode.is_simulated();
        // Per-request attribution needs span logs: a traced simulated
        // serve profiles implicitly, so FX_TRACE=1 alone yields full
        // breakdowns (profiling never moves the virtual clock).
        if sim && machine.tracing {
            machine = machine.with_profiling(true);
        }
        let cfg = self.cfg;
        let servable = &self.servable;
        let trace_arc: Arc<[ServeRequest]> = trace.into();

        let rep = spmd(&machine, move |cx| {
            if sim {
                serve_simulated(cx, servable, &cfg, &trace_arc, &tenants)
            } else {
                serve_real(cx, servable, &cfg, &trace_arc, &tenants)
            }
        });
        let report = assemble(rep, trace, tenant_names, &telemetry);
        // Retain the slowest requests' per-request Chrome traces in the
        // telemetry exemplar ring (served by `/trace/<id>`). Rendering
        // is lazy: only ring entrants pay for JSON serialization.
        for t in &report.request_traces {
            let lat_ns = (t.latency().max(0.0) * 1e9).round() as u64;
            telemetry.offer_exemplar_trace(t.trace_id, lat_ns, || {
                fx_runtime::chrome_trace_request_json(&report.spans, t.trace_id)
            });
        }
        report
    }
}

/// Admit `r` into the bounded queue or shed per policy. Returns the
/// victim's trace index if a request was shed. Telemetry counters are
/// bumped only when `account` is set (processor 0), so machine-wide
/// totals count each decision once even though the simulated-time loop
/// replicates the decision on every processor.
fn admit(
    r: &ServeRequest,
    queue: &mut VecDeque<ServeRequest>,
    cfg: &ServeConfig,
    tenants: &[Arc<TenantStats>],
    account: bool,
) -> Option<usize> {
    if account {
        tenants[r.tenant].arrived.fetch_add(1, Ordering::Relaxed);
    }
    if queue.len() < cfg.queue_cap {
        if account {
            tenants[r.tenant].admitted.fetch_add(1, Ordering::Relaxed);
        }
        queue.push_back(r.clone());
        return None;
    }
    match cfg.shed {
        ShedPolicy::DropNewest => {
            if account {
                tenants[r.tenant].shed.fetch_add(1, Ordering::Relaxed);
            }
            Some(r.idx)
        }
        ShedPolicy::DropOldest => {
            let victim = queue.pop_front().expect("queue_cap >= 1 so the full queue is nonempty");
            if account {
                tenants[victim.tenant].shed.fetch_add(1, Ordering::Relaxed);
                tenants[r.tenant].admitted.fetch_add(1, Ordering::Relaxed);
            }
            queue.push_back(r.clone());
            Some(victim.idx)
        }
    }
}

/// Record the completions this processor canonically reported:
/// latency (arrival → completion) goes into the tenant histogram in
/// virtual nanoseconds. Safe under concurrent reporters (replicated
/// modules complete different requests of the same tenant at once)
/// because the histogram path uses shared atomic recording.
fn account_completions<T>(
    got: &[fx_apps::util::ReqCompletion<T>],
    trace: &[ServeRequest],
    tenants: &[Arc<TenantStats>],
    traced: bool,
) {
    for c in got {
        let r = &trace[c.req];
        let lat_ns = ((c.done - r.arrival).max(0.0) * 1e9).round() as u64;
        // Traced runs attach the request's trace id as the bucket's
        // OpenMetrics exemplar; id 0 records without one.
        let tid = if traced { request_trace_id(c.req) } else { 0 };
        tenants[r.tenant].on_complete_traced(lat_ns, tid);
    }
}

/// Simulated-time serving: a replicated decision procedure. Each round
/// every processor agrees on the round time (`allreduce` max — the
/// pipeline's slowest processor gates admission, exactly as a shared
/// frontend would observe), jumps idle gaps to the next arrival, then
/// admits/sheds/batches with identical pure-function decisions. No
/// coordinator, no extra messages beyond the agreement reduction, and
/// the run stays bit-identical across executors and hosts.
fn serve_simulated<S: Servable>(
    cx: &mut Cx,
    servable: &S,
    cfg: &ServeConfig,
    trace: &[ServeRequest],
    tenants: &[Arc<TenantStats>],
) -> ProcServe<S::Output> {
    let account = cx.id() == 0;
    let traced = cx.tracing() && cx.profiling();
    let mut queue: VecDeque<ServeRequest> = VecDeque::new();
    let mut next = 0usize;
    let mut completions = Vec::new();
    let mut sheds = Vec::new();
    let mut rounds = 0u64;
    let mut traces = Vec::new();

    loop {
        rounds += 1;
        let mut t = cx.allreduce(cx.now(), f64::max);
        cx.runtime().advance_to(t);
        if queue.is_empty() {
            if next >= trace.len() {
                break;
            }
            if trace[next].arrival > t {
                // Nothing queued and nothing arrived: jump the idle gap.
                t = trace[next].arrival;
                cx.runtime().advance_to(t);
            }
        }
        while next < trace.len() && trace[next].arrival <= t {
            if let Some(victim) = admit(&trace[next], &mut queue, cfg, tenants, account) {
                if account {
                    sheds.push(victim);
                }
            }
            next += 1;
        }
        if queue.is_empty() {
            continue;
        }
        let k = cfg.batch_max.min(queue.len());
        let batch: Vec<ServeRequest> = queue.drain(..k).collect();
        // Dispatch is now: admission admits only arrivals <= t, so every
        // batch member's queue_wait = dispatch - arrival is >= 0. The span
        // mark brackets the batch: everything the reporter's clock does
        // between mark and a completion belongs to that request's service
        // window.
        let dispatch = cx.now();
        let mark = cx.runtime().span_mark();
        let got = servable.run_batch(cx, &batch);
        cx.clear_trace();
        account_completions(&got, trace, tenants, traced);
        if traced {
            for c in &got {
                let own = request_trace_id(c.req);
                let breakdown = cx.runtime().spans().window_breakdown(mark, dispatch, c.done, own);
                traces.push(RequestTrace {
                    req: c.req,
                    tenant: trace[c.req].tenant,
                    trace_id: own,
                    arrival: trace[c.req].arrival,
                    dispatch,
                    done: c.done,
                    round: rounds,
                    batch_size: batch.len(),
                    breakdown,
                });
            }
        }
        completions.extend(got);
    }
    ProcServe { completions, sheds, rounds, traces }
}

/// Real-time serving: processor 0 is the frontend. It polls the wall
/// clock for arrivals, runs admission control, and broadcasts either a
/// batch directive (`Some(batch)`) or shutdown (`None`). Everyone else
/// declares itself idle while waiting for the next directive so the
/// stuck-run watchdog does not mistake trace gaps for a deadlock —
/// then clears the flag before computing, so a genuinely wedged batch
/// still dumps.
fn serve_real<S: Servable>(
    cx: &mut Cx,
    servable: &S,
    cfg: &ServeConfig,
    trace: &[ServeRequest],
    tenants: &[Arc<TenantStats>],
) -> ProcServe<S::Output> {
    let me = cx.id();
    let mut queue: VecDeque<ServeRequest> = VecDeque::new();
    let mut next = 0usize;
    let mut completions = Vec::new();
    let mut sheds = Vec::new();
    let mut rounds = 0u64;

    loop {
        let directive: Option<Vec<ServeRequest>> = if me == 0 {
            loop {
                let now = cx.now();
                while next < trace.len() && trace[next].arrival <= now {
                    if let Some(victim) = admit(&trace[next], &mut queue, cfg, tenants, true) {
                        sheds.push(victim);
                    }
                    next += 1;
                }
                if !queue.is_empty() {
                    let k = cfg.batch_max.min(queue.len());
                    break Some(queue.drain(..k).collect());
                }
                if next >= trace.len() {
                    break None;
                }
                let wait = (trace[next].arrival - cx.now()).max(0.0);
                std::thread::sleep(Duration::from_secs_f64(wait.clamp(0.0002, 0.005)));
            }
        } else {
            None
        };
        if me != 0 {
            cx.set_idle(true);
        }
        let directive = cx.bcast(0, directive);
        if me != 0 {
            cx.set_idle(false);
        }
        let Some(batch) = directive else { break };
        rounds += 1;
        let got = servable.run_batch(cx, &batch);
        account_completions(&got, trace, tenants, cx.tracing());
        completions.extend(got);
    }
    // Real-time mode has no span logs, so no per-request breakdowns.
    ProcServe { completions, sheds, rounds, traces: Vec::new() }
}
